"""Unit tests for the cache tag/state array."""

import pytest

from repro.memory import CacheArray, CacheGeometryError, CacheState


def test_geometry_64k_direct_mapped():
    c = CacheArray(64 * 1024, 16, 1)
    assert c.num_sets == 4096


def test_geometry_4k():
    c = CacheArray(4 * 1024, 16, 1)
    assert c.num_sets == 256


def test_invalid_geometry_rejected():
    with pytest.raises(CacheGeometryError):
        CacheArray(0, 16)
    with pytest.raises(CacheGeometryError):
        CacheArray(1000, 16)  # not divisible
    with pytest.raises(CacheGeometryError):
        CacheArray(48, 16, 1)  # 3 sets: not a power of two
    with pytest.raises(CacheGeometryError):
        CacheArray(64, 12, 1)  # line not a power of two


def test_block_mapping_roundtrip():
    c = CacheArray(1024, 16, 1)  # 64 sets
    for block in [0, 1, 63, 64, 65, 1000]:
        assert c.block_from(c.tag_of(block), c.set_index(block)) == block


def test_block_of_strips_offset():
    c = CacheArray(1024, 16, 1)
    assert c.block_of(0) == 0
    assert c.block_of(15) == 0
    assert c.block_of(16) == 1
    assert c.block_of(47) == 2


def test_lookup_miss_then_install_then_hit():
    c = CacheArray(256, 16, 1)
    assert c.lookup(5) is None
    line = c.install(5, CacheState.SHARED, version=3)
    assert line.state is CacheState.SHARED
    assert c.lookup(5) is line
    assert c.lookup(5).version == 3


def test_conflicting_blocks_map_to_same_frame():
    c = CacheArray(256, 16, 1)  # 16 sets
    c.install(1, CacheState.SHARED, 0)
    victim = c.victim_for(17)  # 17 % 16 == 1
    assert victim.valid and victim.tag == c.tag_of(1)


def test_install_over_live_line_rejected():
    c = CacheArray(256, 16, 1)
    c.install(1, CacheState.DIRTY, 0)
    with pytest.raises(CacheGeometryError):
        c.install(17, CacheState.SHARED, 0)


def test_invalidate_frees_frame():
    c = CacheArray(256, 16, 1)
    line = c.install(1, CacheState.DIRTY, 2)
    line.invalidate()
    assert c.lookup(1) is None
    c.install(17, CacheState.SHARED, 0)  # no eviction needed now


def test_lru_within_set():
    c = CacheArray(512, 16, 2)  # 16 sets, 2-way
    a = c.install(1, CacheState.SHARED, 0)
    b = c.install(17, CacheState.SHARED, 0)
    c.touch(a)  # a most recently used; victim should be b
    assert c.victim_for(33) is b


def test_replace_locked_frames_skipped():
    c = CacheArray(512, 16, 2)
    a = c.install(1, CacheState.MIGRATING, 0)
    b = c.install(17, CacheState.SHARED, 0)
    a.replace_locked = True
    c.touch(b)  # b is MRU, but a is locked -> victim must be b
    assert c.victim_for(33) is b


def test_all_locked_set_returns_lru_locked():
    c = CacheArray(256, 16, 1)
    a = c.install(1, CacheState.MIGRATING, 0)
    a.replace_locked = True
    assert c.victim_for(17) is a


def test_valid_blocks_enumeration():
    c = CacheArray(256, 16, 1)
    c.install(3, CacheState.SHARED, 0)
    c.install(8, CacheState.DIRTY, 1)
    blocks = dict(c.valid_blocks())
    assert set(blocks) == {3, 8}
    assert c.count_valid() == 2


def test_migrating_is_writable_readable():
    from repro.memory import READABLE_STATES, WRITABLE_STATES

    assert CacheState.MIGRATING in WRITABLE_STATES
    assert CacheState.MIGRATING in READABLE_STATES
    assert CacheState.SHARED not in WRITABLE_STATES
