"""Property-based end-to-end protocol tests.

Hypothesis generates whole parallel programs; the machine must terminate
(no protocol deadlock) and uphold the coherence invariants that the
:class:`~repro.coherence.checker.CoherenceChecker` asserts continuously
— under every protocol variant and both consistency models, with a tiny
cache so replacements, NAKs, and MIack replacement locks all fire.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Machine, MachineConfig, ProtocolPolicy
from repro.coherence.states import DirState
from repro.consistency import SEQUENTIAL_CONSISTENCY, WEAK_ORDERING
from repro.cpu.ops import Barrier, Lock, Read, Unlock, Write
from repro.memory.cache import CacheState

POLICIES = [
    ProtocolPolicy.write_invalidate(),
    ProtocolPolicy.adaptive_default(),
    ProtocolPolicy(adaptive=True, rxq_reverts_to_ordinary=True),
    ProtocolPolicy(adaptive=True, nomig_enabled=False),
]

NUM_PROCS = 4  # 2x2 mesh keeps the state space dense and runs fast

op_strategy = st.one_of(
    st.tuples(st.just("read"), st.integers(0, 11)),
    st.tuples(st.just("write"), st.integers(0, 11)),
    st.tuples(st.just("cs"), st.integers(0, 2)),  # lock-protected RMW
)

program_strategy = st.lists(op_strategy, min_size=0, max_size=25)
programs_strategy = st.lists(
    program_strategy, min_size=NUM_PROCS, max_size=NUM_PROCS
)


def materialize(raw_program, counters_base=12):
    for kind, arg in raw_program:
        if kind == "read":
            yield Read(arg * 16)
        elif kind == "write":
            yield Write(arg * 16)
        else:
            yield Lock(arg)
            yield Read((counters_base + arg) * 16)
            yield Write((counters_base + arg) * 16)
            yield Unlock(arg)


def check_final_state(machine):
    """Structural invariants once the machine has drained."""
    # Every directory entry idle; owner/sharer bookkeeping consistent with
    # the actual cache contents.
    for directory in machine.directories:
        for block, entry in directory.entries.items():
            assert not entry.busy
            assert not entry.pending
            holders = {
                c.node
                for c in machine.caches
                if c.cache.lookup(block) is not None
            }
            if entry.state in (DirState.DIRTY_REMOTE, DirState.MIGRATORY_DIRTY):
                line = machine.caches[entry.owner].cache.lookup(block)
                assert line is not None
                assert line.state in (CacheState.DIRTY, CacheState.MIGRATING)
                assert holders == {entry.owner}
            elif entry.state in (DirState.UNCACHED, DirState.MIGRATORY_UNCACHED):
                assert not holders
            else:  # Shared-Remote: presence may be stale (silent evictions)
                assert holders <= entry.sharers
                for holder in holders:
                    line = machine.caches[holder].cache.lookup(block)
                    assert line.state is CacheState.SHARED
    # No writebacks or MSHRs left.
    for cache in machine.caches:
        assert not cache.mshrs
        assert not cache.wb_buffer


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
@given(raw=programs_strategy, wo=st.booleans())
@settings(max_examples=60, deadline=None)
def test_random_programs_terminate_coherently(policy, raw, wo):
    config = MachineConfig(
        mesh_width=2,
        mesh_height=2,
        cache_size=256,  # 16 frames: heavy replacement traffic
        policy=policy,
        consistency=WEAK_ORDERING if wo else SEQUENTIAL_CONSISTENCY,
        max_events=2_000_000,
    )
    machine = Machine(config)
    machine.run([iter(list(materialize(p))) for p in raw])
    check_final_state(machine)


@given(raw=programs_strategy)
@settings(max_examples=30, deadline=None)
def test_wi_and_ad_commit_identical_write_counts(raw):
    """Both protocols perform exactly the same writes (same programs)."""
    latest = []
    for policy in (ProtocolPolicy.write_invalidate(), ProtocolPolicy.adaptive_default()):
        config = MachineConfig(
            mesh_width=2, mesh_height=2, cache_size=256,
            policy=policy, max_events=2_000_000,
        )
        machine = Machine(config)
        machine.run([iter(list(materialize(p))) for p in raw])
        latest.append(dict(machine.checker.latest))
    assert latest[0] == latest[1]
