"""Round-trip properties of the struct-of-arrays hot-core storage.

The cache and directory keep their per-line/per-block state in dense
typed columns (``array('q')`` / ``bytearray``) for the hot paths, while
cold paths (checker, dumps, tests) see thin view objects.  These tests
pin the contract: everything written through one surface must read back
identically through the other, and the enum <-> integer-code mappings
must stay bijective.  A failure here means the SoA flattening changed
*state*, not just layout.
"""

import pytest

from repro import Machine, MachineConfig, ProtocolPolicy
from repro.coherence.states import DIR_STATES_BY_CODE, DirState
from repro.cpu.ops import Barrier, Read, Write
from repro.memory.cache import STATES_BY_CODE, CacheArray, CacheState


def run(machine, per_node):
    programs = [iter(per_node.get(n, [])) for n in range(machine.config.num_nodes)]
    return machine.run(programs)


# ----------------------------------------------------------------------
# Enum <-> code bijections
# ----------------------------------------------------------------------
def test_cache_state_codes_bijective():
    assert len(STATES_BY_CODE) == len(CacheState)
    for state in CacheState:
        assert STATES_BY_CODE[state.code] is state


def test_dir_state_codes_bijective():
    assert len(DIR_STATES_BY_CODE) == len(DirState)
    for state in DirState:
        assert DIR_STATES_BY_CODE[state.code] is state


# ----------------------------------------------------------------------
# CacheArray: columns <-> views
# ----------------------------------------------------------------------
def test_cache_view_reads_columns():
    c = CacheArray(256, 16, 1)  # 16 direct-mapped frames
    index = c.install_index(block=5, state_code=CacheState.SHARED.code, version=7)
    view = c.view(index)
    assert view.state is CacheState.SHARED
    assert view.tag == c.tag_of(5)
    assert view.version == 7
    assert view.valid
    # Raw columns agree with the view.
    assert c.states[index] == CacheState.SHARED.code
    assert c.tags[index] == c.tag_of(5)
    assert c.versions[index] == 7


def test_cache_view_writes_columns():
    c = CacheArray(256, 16, 1)
    index = c.install_index(block=3, state_code=CacheState.DIRTY.code, version=1)
    view = c.view(index)
    view.state = CacheState.MIGRATING
    view.version = 9
    view.replace_locked = True
    assert c.states[index] == CacheState.MIGRATING.code
    assert c.versions[index] == 9
    assert c.locked[index] == 1
    view.invalidate()
    assert c.states[index] == CacheState.INVALID.code
    assert not view.valid
    assert c.find(3) < 0


def test_cache_views_are_stable_objects():
    c = CacheArray(256, 16, 1)
    index = c.install_index(block=2, state_code=CacheState.SHARED.code, version=0)
    assert c.view(index) is c.view(index)
    assert c.lookup(2) is c.view(index)


def test_cache_index_and_view_api_equivalent():
    """install() (view API) and install_index() populate identical columns."""
    via_view = CacheArray(512, 16, 2)
    via_index = CacheArray(512, 16, 2)
    for block, state in ((0, CacheState.SHARED), (16, CacheState.DIRTY),
                         (3, CacheState.MIGRATING)):
        via_view.install(block, state, version=block + 1)
        via_index.install_index(block, state.code, version=block + 1)
    assert via_view.tags == via_index.tags
    assert via_view.states == via_index.states
    assert via_view.versions == via_index.versions
    assert via_view.count_valid() == via_index.count_valid()
    assert (sorted(b for b, _ in via_view.valid_blocks())
            == sorted(b for b, _ in via_index.valid_blocks()))


# ----------------------------------------------------------------------
# Directory: columns <-> entry views, after a real protocol run
# ----------------------------------------------------------------------
def _run_sharing_machine():
    machine = Machine(
        MachineConfig.dash_default(policy=ProtocolPolicy.adaptive_default())
    )
    addr = 4096  # one migratory block plus one read-shared block
    shared = 8192
    per_node = {
        0: [Read(shared), Read(addr), Write(addr), Barrier(0), Barrier(1)],
        1: [Read(shared), Barrier(0), Read(addr), Write(addr), Barrier(1)],
        2: [Read(shared), Barrier(0), Barrier(1), Read(addr), Write(addr)],
    }
    for n in range(machine.config.num_nodes):
        per_node.setdefault(n, [Barrier(0), Barrier(1)])
    run(machine, per_node)
    return machine


def test_directory_entry_views_match_columns():
    machine = _run_sharing_machine()
    seen_any = False
    for directory in machine.directories:
        for block, entry in directory.entries.items():
            seen_any = True
            row = directory._index[block]
            assert entry.state is DIR_STATES_BY_CODE[directory._states[row]]
            owner = directory._owners[row]
            assert entry.owner == (None if owner < 0 else owner)
            assert entry.sharers is directory._sharers[row]
            assert entry.version == directory._versions[row]
            assert entry.busy == bool(directory._busy[row])
            assert entry.awaiting_wb == bool(directory._awaiting[row])
    assert seen_any, "workload touched no directory entries"


def test_directory_entries_view_is_dict_like():
    machine = _run_sharing_machine()
    for directory in machine.directories:
        entries = directory.entries
        assert len(entries) == len(list(entries))
        for block in entries:
            assert block in entries
            assert entries.get(block) is entries[block]
        assert entries.get(-1) is None
        with pytest.raises(KeyError):
            entries[-1]
        assert sorted(entries.keys()) == sorted(b for b, _ in entries.items())
        assert len(list(entries.values())) == len(entries)


def test_directory_entry_setters_write_columns():
    machine = _run_sharing_machine()
    directory = next(d for d in machine.directories if len(d.entries))
    blocks = list(directory.entries.keys())
    entry = directory.entries[blocks[0]]
    row = directory._index[blocks[0]]
    entry.state = DirState.MIGRATORY_DIRTY
    entry.owner = 5
    entry.version = 42
    entry.busy = True
    entry.awaiting_wb = True
    assert directory._states[row] == DirState.MIGRATORY_DIRTY.code
    assert directory._owners[row] == 5
    assert directory._versions[row] == 42
    assert directory._busy[row] == 1 and directory._awaiting[row] == 1
    entry.owner = None
    assert directory._owners[row] == -1


def test_diagnostic_dump_reconstructs_from_soa():
    """DiagnosticDump (the cold-path consumer) renders from SoA state."""
    machine = _run_sharing_machine()
    dump = machine.diagnostic_dump("inspect")
    text = dump.render()
    assert "inspect" in text
    # Quiescent machine: no transient state left in the dump, and the
    # cache columns agree with the view-based census.
    for ctrl in machine.caches:
        assert ctrl.introspect()["mshrs"] == []
        valid_codes = sum(1 for code in ctrl.cache.states if code)
        assert valid_codes == ctrl.cache.count_valid()
