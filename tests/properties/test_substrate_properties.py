"""Property-based tests of the simulation substrate."""

from hypothesis import given, settings, strategies as st

from repro.machine.allocator import PagePlacement, SharedAllocator
from repro.memory.cache import CacheArray, CacheState
from repro.network.mesh import Mesh
from repro.sim.engine import Simulator
from repro.sim.resource import Resource


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 50)), max_size=50))
@settings(max_examples=200, deadline=None)
def test_resource_reservations_never_overlap(requests):
    r = Resource("r")
    intervals = []
    for earliest, duration in requests:
        start = r.reserve(earliest, duration)
        assert start >= earliest
        intervals.append((start, start + duration))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1  # FIFO in reservation order


@given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.integers(0, 15),
    st.integers(0, 15),
    st.integers(1, 300),
)
@settings(max_examples=300, deadline=None)
def test_mesh_route_properties(src, dst, bits):
    sim = Simulator()
    mesh = Mesh(sim, 4, 4)
    path = mesh.route(src, dst)
    # Route length equals Manhattan distance, links are adjacent, and the
    # path actually connects src to dst.
    assert len(path) == mesh.hop_count(src, dst)
    node = src
    for a, b in path:
        assert a == node
        assert b in mesh._neighbors(a)
        node = b
    assert node == dst
    # Unloaded latency is monotone in message size.
    if src != dst:
        assert mesh.unloaded_latency(src, dst, bits) <= mesh.unloaded_latency(
            src, dst, bits + 16
        )


@given(st.integers(1, 64), st.integers(0, 10_000))
@settings(max_examples=300, deadline=None)
def test_page_placement_within_range_and_stable(num_nodes, addr):
    placement = PagePlacement(num_nodes)
    home = placement.home_of_addr(addr)
    assert 0 <= home < num_nodes
    assert placement.home_of_addr(addr) == home
    # Every address on the same page has the same home.
    page_base = (addr // 4096) * 4096
    assert placement.home_of_addr(page_base) == home


@given(st.lists(st.integers(1, 200), min_size=1, max_size=30))
@settings(max_examples=200, deadline=None)
def test_allocator_spans_are_disjoint_and_aligned(sizes):
    allocator = SharedAllocator(line_size=16)
    spans = []
    for index, size in enumerate(sizes):
        base = allocator.alloc(size, f"obj{index}")
        assert base % 16 == 0
        spans.append((base, base + size))
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1


@given(
    st.integers(0, 9),
    st.lists(st.integers(0, 511), min_size=1, max_size=200),
)
@settings(max_examples=200, deadline=None)
def test_cache_array_lookup_agrees_with_reference(assoc_exp, blocks):
    """Install/lookup behaves like a dict restricted to frame capacity."""
    cache = CacheArray(512, 16, 1)  # 32 frames, direct mapped
    resident = {}
    for block in blocks:
        line = cache.lookup(block)
        if line is not None:
            assert resident.get(cache.set_index(block)) == block
            continue
        victim = cache.victim_for(block)
        if victim.valid:
            victim.invalidate()
        cache.install(block, CacheState.SHARED, 0)
        resident[cache.set_index(block)] = block
    assert cache.count_valid() == len(resident)
