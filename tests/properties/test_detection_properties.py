"""Property-based tests of the detection FSM (hypothesis).

The reference FSM of Figure 4 must uphold the paper's conditions on
*every* request stream, not just the examples of Section 3.3.
"""

from hypothesis import given, settings, strategies as st

from repro.core.detection import (
    DetectorState,
    ReferenceDetectorFSM,
    should_nominate,
)
from repro.core.policy import ProtocolPolicy

NODES = st.integers(min_value=0, max_value=3)

REQUESTS = st.lists(
    st.tuples(st.sampled_from(["rr", "rxq", "repl"]), NODES),
    min_size=0,
    max_size=40,
)


def apply_stream(fsm, stream):
    for kind, node in stream:
        if kind == "rr":
            fsm.read_miss(node)
        elif kind == "rxq":
            fsm.read_exclusive(node)
        else:
            fsm.replacement(node)


@given(REQUESTS)
@settings(max_examples=300, deadline=None)
def test_fsm_never_crashes_and_stays_consistent(stream):
    fsm = ReferenceDetectorFSM(policy=ProtocolPolicy.adaptive_default())
    apply_stream(fsm, stream)
    # Structural invariants of the home state.
    if fsm.state in (DetectorState.DIRTY_REMOTE, DetectorState.MIGRATORY_DIRTY):
        assert fsm.owner is not None
        assert not fsm.sharers
    if fsm.state in (DetectorState.UNCACHED, DetectorState.MIGRATORY_UNCACHED):
        assert fsm.owner is None
    if fsm.state is DetectorState.SHARED_REMOTE:
        assert fsm.sharers


@given(REQUESTS)
@settings(max_examples=300, deadline=None)
def test_wi_policy_never_enters_migratory_states(stream):
    fsm = ReferenceDetectorFSM(policy=ProtocolPolicy.write_invalidate())
    apply_stream(fsm, stream)
    assert not fsm.is_migratory
    assert fsm.nominations == 0


@given(REQUESTS)
@settings(max_examples=300, deadline=None)
def test_nomination_only_under_paper_condition(stream):
    """Every nomination coincides with N==2 and a valid, different LW."""
    fsm = ReferenceDetectorFSM(policy=ProtocolPolicy.adaptive_default())
    for kind, node in stream:
        if kind == "rxq" and fsm.state is DetectorState.SHARED_REMOTE:
            expected = should_nominate(len(fsm.sharers), node, fsm.last_writer)
            before = fsm.nominations
            fsm.read_exclusive(node)
            nominated = fsm.nominations > before
            assert nominated == expected
        elif kind == "rr":
            fsm.read_miss(node)
        elif kind == "rxq":
            fsm.read_exclusive(node)
        else:
            fsm.replacement(node)


@given(REQUESTS)
@settings(max_examples=300, deadline=None)
def test_lw_invalid_whenever_sharers_exceed_two(stream):
    fsm = ReferenceDetectorFSM(policy=ProtocolPolicy.adaptive_default())
    for kind, node in stream:
        apply_stream(fsm, [(kind, node)])
        if len(fsm.sharers) > 2:
            assert fsm.last_writer is None


@given(st.lists(NODES, min_size=2, max_size=20))
@settings(max_examples=200, deadline=None)
def test_pure_migratory_stream_nominates_on_second_writer(writers):
    """Rr_i Rxq_i Rr_j Rxq_j ... nominates exactly at the first j != i."""
    fsm = ReferenceDetectorFSM(policy=ProtocolPolicy.adaptive_default())
    first = writers[0]
    seen_different = False
    for node in writers:
        fsm.read_miss(node)
        if fsm.is_migratory:
            fsm.write_hit_by_owner()
        else:
            fsm.read_exclusive(node)
        if node != first and not seen_different:
            seen_different = True
            assert fsm.is_migratory
    assert fsm.nominations == (1 if seen_different else 0)


@given(st.lists(st.booleans(), min_size=1, max_size=20))
@settings(max_examples=200, deadline=None)
def test_producer_consumer_never_nominated(reader_flags):
    """Writer 0 alternating with arbitrary readers is never migratory."""
    fsm = ReferenceDetectorFSM(policy=ProtocolPolicy.adaptive_default())
    for flag in reader_flags:
        fsm.read_exclusive(0)
        fsm.read_miss(1 if flag else 2)
    assert not fsm.is_migratory
