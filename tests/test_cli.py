"""CLI tests (fast paths only)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the default result cache away from the working tree."""
    monkeypatch.setenv("REPRO_SIM_CACHE", str(tmp_path / "cli-cache"))


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("mp3d", "cholesky", "water", "lu"):
        assert name in out


def test_run_command_tiny(capsys):
    code = main(["run", "migratory-counters", "--protocol", "AD"])
    assert code == 0
    out = capsys.readouterr().out
    assert "execution time" in out
    assert "nominations" in out


def test_compare_command_tiny(capsys):
    code = main(["compare", "producer-consumer"])
    assert code == 0
    out = capsys.readouterr().out
    assert "execution-time ratio" in out
    assert "read-exclusive reduction" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-a-workload"])


def test_unknown_protocol_rejected():
    with pytest.raises(SystemExit):
        main(["run", "lu", "--protocol", "MOESI"])


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for sub in ("run", "compare", "table1", "report", "bench", "list",
                "figure5", "serve", "cache"):
        assert sub in text


def test_run_command_warm_cache(capsys):
    args = ["run", "migratory-counters", "--protocol", "AD"]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "miss (stored)" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "hit (fingerprint verified)" in warm
    # Identical printed metrics apart from the cache line.
    strip = lambda out: [l for l in out.splitlines() if "result cache" not in l]
    assert strip(cold) == strip(warm)
    assert main(args + ["--no-cache"]) == 0
    assert "disabled" in capsys.readouterr().out


def test_figure5_command_warm_cache(tmp_path, capsys):
    stats1, stats2 = tmp_path / "cold.json", tmp_path / "warm.json"
    args = ["figure5", "--preset", "tiny", "--no-check"]
    assert main(args + ["--stats-json", str(stats1)]) == 0
    out = capsys.readouterr().out
    assert "W-I" in out and "result cache" in out
    cold = json.loads(stats1.read_text())
    assert cold["hits"] == 0 and cold["stores"] == cold["misses"] > 0

    assert main(args + ["--stats-json", str(stats2)]) == 0
    capsys.readouterr()
    warm = json.loads(stats2.read_text())
    assert warm["misses"] == 0
    assert warm["hit_rate"] == 1.0
    assert warm["hits"] == cold["stores"]


def test_cache_stats_and_clear(capsys):
    assert main(["run", "migratory-counters"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["entries"] == 1
    assert doc["code_version"]
    assert main(["cache", "clear"]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_compare_command_workers(capsys):
    code = main(["compare", "producer-consumer", "--workers", "2"])
    assert code == 0
    assert "execution-time ratio" in capsys.readouterr().out


def test_bench_command_quick(tmp_path, capsys):
    target = tmp_path / "BENCH_smoke.json"
    code = main(["bench", "--quick", "--workers", "2", "--output", str(target)])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out and "results identical" in out
    import json

    doc = json.loads(target.read_text())
    assert doc["schema"] == "repro-bench/1"
    assert doc["parallel_matches_serial"] is True


def test_verify_command(capsys):
    assert main(["verify", "--protocol", "AD", "--caches", "2", "--ops", "2"]) == 0
    out = capsys.readouterr().out
    assert "invariants held" in out


def test_sharing_command(capsys):
    assert main(["sharing", "migratory-counters", "--no-check"]) == 0
    out = capsys.readouterr().out
    assert "migratory" in out
    assert "invalidations" in out


def test_profile_command(tmp_path, capsys):
    target = tmp_path / "profile.json"
    code = main(
        ["profile", "migratory-counters", "--no-check", "--top", "5",
         "--output", str(target)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "tottime" in out
    assert "events/s" in out
    import json

    doc = json.loads(target.read_text())
    assert doc["schema"] == "repro-profile/1"
    assert doc["workload"] == "migratory-counters"
    assert len(doc["hotspots"]) == 5
    assert doc["events_processed"] > 0
    # Profiling must not perturb the simulation itself.
    assert doc["execution_time"] > 0
    # The artifact is self-describing: it records how to reproduce it.
    assert doc["seed"] == 42
    assert doc["check_coherence"] is False
    assert doc["machine"]["nodes"] == 16
    assert doc["machine"]["line_size"] == 16


def test_run_trace_flag_prints_latency_summary(capsys):
    code = main(["run", "migratory-counters", "--protocol", "AD", "--trace"])
    assert code == 0
    out = capsys.readouterr().out
    assert "miss type" in out
    assert "p95" in out
    assert "per-segment mean cycles" in out


def test_trace_command_writes_artifacts(tmp_path, capsys):
    import json

    perfetto = tmp_path / "trace.json"
    spans = tmp_path / "spans.json"
    metrics = tmp_path / "metrics.csv"
    code = main(
        ["trace", "migratory-counters", "--protocol", "AD", "--no-check",
         "--perfetto", str(perfetto), "--spans", str(spans),
         "--metrics", str(metrics), "--metrics-interval", "100"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "transactions" in out and "perfetto" in out

    from repro.obs import validate_trace_events

    trace_doc = json.loads(perfetto.read_text())
    assert validate_trace_events(trace_doc) > 0
    spans_doc = json.loads(spans.read_text())
    assert spans_doc["schema"] == "repro-trace/1"
    assert spans_doc["summary"]["spans_closed"] == len(spans_doc["spans"])
    header = metrics.read_text().splitlines()[0]
    assert header.startswith("time,events_queued")


def test_trace_command_summary_only(capsys):
    code = main(["trace", "migratory-counters", "--no-check"])
    assert code == 0
    out = capsys.readouterr().out
    assert "data served by" in out


def test_bus_command(capsys):
    assert main(["bus", "migratory-counters", "--no-check"]) == 0
    out = capsys.readouterr().out
    assert "bus transactions" in out
    assert "nominations" in out


def test_bus_update_protocol(capsys):
    assert main(
        ["bus", "migratory-counters", "--base", "update", "--protocol", "W-I",
         "--no-check"]
    ) == 0
    out = capsys.readouterr().out
    assert "updates_broadcast" in out


def test_parse_size_units():
    from repro.cli import _parse_size

    assert _parse_size("512") == 512
    assert _parse_size("100K") == 100 * 1024
    assert _parse_size("64M") == 64 * 1024 ** 2
    assert _parse_size("2G") == 2 * 1024 ** 3
    assert _parse_size("1.5g") == int(1.5 * 1024 ** 3)
    assert _parse_size("64MB") == 64 * 1024 ** 2
    with pytest.raises(SystemExit, match="bad size"):
        _parse_size("sixty-four")


def test_cache_prune_command(capsys):
    assert main(["run", "migratory-counters"]) == 0
    assert main(["run", "producer-consumer"]) == 0
    capsys.readouterr()
    # Generous budget: nothing to evict.
    assert main(["cache", "prune", "--max-bytes", "1G"]) == 0
    assert "evicted 0" in capsys.readouterr().out
    # One-byte budget: everything goes, LRU first.
    assert main(["cache", "prune", "--max-bytes", "1"]) == 0
    out = capsys.readouterr().out
    assert "evicted 2 least-recently-fetched entries" in out
    assert main(["cache", "stats"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_cache_prune_requires_max_bytes():
    with pytest.raises(SystemExit, match="--max-bytes"):
        main(["cache", "prune"])


def test_figure5_checkpoint_and_resume(tmp_path, capsys):
    checkpoint = tmp_path / "sweep.json"
    args = ["figure5", "--preset", "tiny", "--no-check",
            "--checkpoint", str(checkpoint)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "checkpoint" in out and "'done'" in out
    doc = json.loads(checkpoint.read_text())
    assert doc["schema"] == "repro-checkpoint/1"
    assert all(c["status"] == "done" for c in doc["cells"].values())

    # Relaunching with --resume serves every cell from the warm cache.
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "'cached'" in out
    doc = json.loads(checkpoint.read_text())
    assert all(c["status"] == "cached" for c in doc["cells"].values())


def test_figure5_checkpoint_requires_cache():
    with pytest.raises(SystemExit, match="result cache"):
        main(["figure5", "--preset", "tiny", "--no-check", "--no-cache",
              "--resume"])
