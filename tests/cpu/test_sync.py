"""Unit tests for the ideal synchronization manager."""

import pytest

from repro.cpu.sync import IdealSync
from repro.sim.engine import SimulationError, Simulator


def make(num=4):
    sim = Simulator()
    return sim, IdealSync(sim, num)


def test_uncontended_lock_granted_after_one_cycle():
    sim, sync = make()
    granted = []
    sync.acquire(0, 1, lambda: granted.append(sim.now))
    sim.run()
    assert granted == [1]
    assert sync.holder_of(1) == 0


def test_contended_lock_fifo():
    sim, sync = make()
    order = []
    sync.acquire(0, 1, lambda: order.append((0, sim.now)))
    sync.acquire(1, 1, lambda: order.append((1, sim.now)))
    sync.acquire(2, 1, lambda: order.append((2, sim.now)))
    sim.run()
    assert order == [(0, 1)]
    sync.release(0, 1)
    sim.run()
    assert order[-1][0] == 1
    sync.release(1, 1)
    sim.run()
    assert [o[0] for o in order] == [0, 1, 2]
    assert sync.lock_contended == 2


def test_release_frees_lock_when_queue_empty():
    sim, sync = make()
    sync.acquire(0, 1, lambda: None)
    sim.run()
    sync.release(0, 1)
    assert sync.holder_of(1) is None
    granted = []
    sync.acquire(2, 1, lambda: granted.append(True))
    sim.run()
    assert granted == [True]


def test_release_by_non_holder_raises():
    sim, sync = make()
    sync.acquire(0, 1, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sync.release(3, 1)


def test_distinct_locks_independent():
    sim, sync = make()
    granted = []
    sync.acquire(0, 1, lambda: granted.append("a"))
    sync.acquire(1, 2, lambda: granted.append("b"))
    sim.run()
    assert sorted(granted) == ["a", "b"]


def test_barrier_releases_all_when_full():
    sim, sync = make(num=3)
    released = []
    sync.barrier(0, 0, lambda: released.append(0))
    sync.barrier(1, 0, lambda: released.append(1))
    sim.run()
    assert released == []
    assert sync.waiting_at_barrier(0) == 2
    sync.barrier(2, 0, lambda: released.append(2))
    sim.run()
    assert sorted(released) == [0, 1, 2]
    assert sync.barriers_completed == 1


def test_barrier_ids_are_independent():
    sim, sync = make(num=2)
    released = []
    sync.barrier(0, 0, lambda: released.append("a0"))
    sync.barrier(0, 1, lambda: released.append("a1"))
    sync.barrier(1, 1, lambda: released.append("b1"))
    sim.run()
    assert sorted(released) == ["a1", "b1"]
    sync.barrier(1, 0, lambda: released.append("b0"))
    sim.run()
    assert sorted(released) == ["a0", "a1", "b0", "b1"]


def test_barrier_reusable_after_completion():
    sim, sync = make(num=2)
    count = []
    sync.barrier(0, 7, lambda: count.append(1))
    sync.barrier(1, 7, lambda: count.append(1))
    sim.run()
    sync.barrier(0, 7, lambda: count.append(1))
    sync.barrier(1, 7, lambda: count.append(1))
    sim.run()
    assert len(count) == 4
    assert sync.barriers_completed == 2
