"""Processor model tests: stall accounting and consistency behaviour."""

import pytest

from repro import Machine, MachineConfig, ProtocolPolicy
from repro.consistency import SEQUENTIAL_CONSISTENCY, WEAK_ORDERING
from repro.cpu.ops import Barrier, Compute, Lock, Read, Unlock, Write


def run_single(ops, consistency=SEQUENTIAL_CONSISTENCY, **overrides):
    machine = Machine(
        MachineConfig.dash_default(consistency=consistency, **overrides)
    )
    programs = [iter(ops)] + [iter(()) for _ in range(15)]
    result = machine.run(programs)
    return machine, result


def test_compute_counts_as_busy():
    machine, result = run_single([Compute(50)])
    b = machine.processors[0].breakdown
    assert b.busy == 50
    assert b.total == 50
    assert result.execution_time == 50


def test_cache_hit_costs_one_busy_cycle():
    machine, _ = run_single([Read(0), Read(0), Read(0)])
    b = machine.processors[0].breakdown
    # 1 miss (stall) + 3 busy cycles for the three accesses.
    assert b.busy == 3
    assert b.read_stall > 0
    assert b.write_stall == 0


def test_write_stall_under_sc():
    machine, _ = run_single([Write(4096)])  # remote home
    b = machine.processors[0].breakdown
    assert b.write_stall > 0
    assert b.read_stall == 0


def test_write_does_not_stall_under_wo():
    ops = [Write(4096), Compute(5)]
    _, sc = run_single(list(ops), SEQUENTIAL_CONSISTENCY)
    machine_wo, wo = run_single(list(ops), WEAK_ORDERING)
    b = machine_wo.processors[0].breakdown
    assert b.write_stall == 0
    assert wo.execution_time < sc.execution_time


def test_wo_drains_writes_before_finish():
    """Execution time still covers the write's completion (final fence)."""
    machine, result = run_single([Write(4096)], WEAK_ORDERING)
    b = machine.processors[0].breakdown
    assert b.sync_stall > 0  # the drain wait
    assert machine.caches[0].outstanding() == 0


def test_wo_fence_at_lock():
    ops = [Write(4096), Lock(0), Unlock(0)]
    machine, _ = run_single(ops, WEAK_ORDERING)
    b = machine.processors[0].breakdown
    assert b.write_stall == 0
    assert b.sync_stall > 0  # fence waited for the outstanding write


def test_wo_read_after_write_same_block_waits():
    ops = [Write(4096), Read(4096)]
    machine, _ = run_single(ops, WEAK_ORDERING)
    b = machine.processors[0].breakdown
    assert b.read_stall > 0  # read queued behind its own write miss


def test_breakdown_sums_to_execution_time():
    ops = [Compute(10), Read(0), Write(0), Read(4096), Compute(5), Write(8192)]
    machine, result = run_single(ops)
    b = machine.processors[0].breakdown
    assert b.total == result.execution_time


def test_breakdown_sums_with_sync():
    machine = Machine(MachineConfig.dash_default())

    def prog(n):
        yield Compute(10 * (n + 1))
        yield Barrier(0)
        yield Lock(0)
        yield Read(0)
        yield Write(0)
        yield Unlock(0)

    result = machine.run([prog(n) for n in range(16)])
    for proc in machine.processors:
        assert proc.breakdown.total == proc.finished_at


def test_lock_wait_counts_as_sync_stall():
    machine = Machine(MachineConfig.dash_default())

    def holder():
        yield Lock(0)
        yield Compute(500)
        yield Unlock(0)

    def waiter():
        yield Compute(1)  # ensure the holder wins the lock
        yield Lock(0)
        yield Unlock(0)

    programs = [holder(), waiter()] + [iter(()) for _ in range(14)]
    machine.run(programs)
    assert machine.processors[1].breakdown.sync_stall > 400


def test_restarting_processor_rejected():
    machine = Machine(MachineConfig.dash_default())
    machine.run([iter(()) for _ in range(16)])
    from repro.sim.engine import SimulationError

    with pytest.raises(SimulationError):
        machine.processors[0].start(iter(()))


def test_wrong_program_count_rejected():
    machine = Machine(MachineConfig.dash_default())
    with pytest.raises(ValueError):
        machine.run([iter(())])
