"""Experiment-harness tests: each table/figure reproducer at tiny scale.

Shape assertions mirror DESIGN.md Section 5: who wins, rough factors and
orderings — not absolute cycle counts.
"""

import pytest

from repro.experiments import (
    PAPER_TABLE1,
    compare_protocols,
    measure_table1,
    render_figure5,
    render_figure6,
    render_section54,
    render_table1,
    render_table3,
    render_table4,
    run_figure5,
    run_figure6,
    run_nomig_necessity,
    run_rxq_heuristic_ablation,
    run_section54,
    run_table3,
    run_table4,
)
from repro.experiments.figure6 import cell
from repro.machine.config import MachineConfig


@pytest.fixture(scope="module")
def table1_rows():
    return measure_table1()


def test_table1_hit_is_one_pclock(table1_rows):
    assert table1_rows["hit"].measured == 1


def test_table1_all_rows_within_tolerance(table1_rows):
    for name, row in table1_rows.items():
        assert abs(row.relative_error) <= 0.15, (name, row.measured, row.paper)


def test_table1_orderings(table1_rows):
    m = {name: row.measured for name, row in table1_rows.items()}
    assert m["hit"] < m["local_fill"] < m["remote_fill_2hop"] < m["remote_fill_3hop"]
    assert m["rx_2hop"] < m["rx_3hop"]


def test_table1_render(table1_rows):
    text = render_table1(table1_rows)
    assert "local_fill" in text and "paper" in text


@pytest.fixture(scope="module")
def figure5_rows():
    return run_figure5(preset="tiny")


def test_figure5_ad_wins_on_migratory_apps(figure5_rows):
    by_name = {row.workload: row for row in figure5_rows}
    assert by_name["mp3d"].etr > 1.2
    assert by_name["cholesky"].etr > 1.1
    assert by_name["water"].etr > 1.0
    assert 0.93 <= by_name["lu"].etr <= 1.07  # no adverse impact


def test_figure5_write_stall_reduced(figure5_rows):
    for row in figure5_rows:
        if row.workload == "lu":
            continue
        wi = row.comparison.wi.aggregate_breakdown.write_stall
        ad = row.comparison.ad.aggregate_breakdown.write_stall
        assert ad < wi, row.workload


def test_figure5_render(figure5_rows):
    text = render_figure5(figure5_rows)
    assert "mp3d" in text and "ETR" in text


@pytest.fixture(scope="module")
def table3_rows():
    return run_table3(preset="tiny")


def test_table3_rx_reduction_ordering(table3_rows):
    red = {row.workload: row.rx_reduction for row in table3_rows}
    # Paper ordering: Water > MP3D > Cholesky >> LU.
    assert red["water"] > red["mp3d"] > red["cholesky"] > red["lu"]
    assert red["water"] > 0.85
    assert red["mp3d"] > 0.5
    assert red["lu"] < 0.15


def test_table3_traffic_reduction(table3_rows):
    red = {row.workload: row.traffic_reduction for row in table3_rows}
    assert red["mp3d"] > 0.2
    assert red["water"] > 0.2
    assert red["cholesky"] > 0.15
    assert abs(red["lu"]) < 0.05


def test_table3_render(table3_rows):
    assert "traffic" in render_table3(table3_rows)


@pytest.fixture(scope="module")
def figure6_cells():
    return run_figure6(preset="tiny")


def test_figure6_wo_hides_write_stall(figure6_cells):
    for variant in ("WO Cont.", "WO No Cont."):
        for policy in ("W-I", "AD"):
            c = cell(figure6_cells, variant, policy)
            breakdown = c.result.aggregate_breakdown
            assert breakdown.write_stall == 0, (variant, policy)


def test_figure6_ad_gains_more_with_contention(figure6_cells):
    def gain(variant):
        wi = cell(figure6_cells, variant, "W-I").normalized_time
        ad = cell(figure6_cells, variant, "AD").normalized_time
        return 1 - ad / wi

    assert gain("SC") > gain("WO Cont.") >= gain("WO No Cont.") - 0.02


def test_figure6_no_contention_closes_gap(figure6_cells):
    wi = cell(figure6_cells, "WO No Cont.", "W-I").normalized_time
    ad = cell(figure6_cells, "WO No Cont.", "AD").normalized_time
    assert 1 - ad / wi < 0.06  # "nearly identical" (paper)


def test_figure6_render(figure6_cells):
    assert "WO Cont." in render_figure6(figure6_cells)


@pytest.fixture(scope="module")
def table4_rows():
    return run_table4(preset="tiny", large_cache=64 * 1024, small_cache=512)


def test_table4_small_cache_raises_miss_rate(table4_rows):
    for row in table4_rows:
        assert row.mr_small >= row.mr_large, row.workload


def test_table4_wpr_high_for_migratory_apps(table4_rows):
    by_name = {row.workload: row for row in table4_rows}
    assert by_name["mp3d"].wpr_large > 0.5
    assert by_name["water"].wpr_large > 0.5
    assert by_name["lu"].wpr_large < 0.2


def test_table4_render(table4_rows):
    assert "WPR" in render_table4(table4_rows)


def test_section54_stability_and_render():
    rows = run_section54(preset="tiny")
    for row in rows:
        # Migratory sharing is stable: reverts are a small fraction.
        assert row.nomig_fraction < 0.2, row.workload
    assert "NoMig" in render_section54(rows)


def test_nomig_necessity_demonstration():
    necessity = run_nomig_necessity(read_rounds=20)
    # The paper: disabling the revert "impacted significantly".
    assert necessity.slowdown > 1.0  # more than 2x total time
    assert necessity.without_nomig.counter("migratory_reads") > (
        necessity.with_nomig.counter("migratory_reads") * 5
    )


def test_rxq_heuristic_no_consistent_improvement():
    rows = run_rxq_heuristic_ablation(preset="tiny")
    # The heuristic must never be a large win (paper dropped it).
    assert all(row.time_ratio > 0.9 for row in rows)


def test_compare_protocols_metrics_consistent():
    comparison = compare_protocols("migratory-counters", iterations=10)
    assert comparison.rx_reduction > 0.3
    assert comparison.traffic_reduction > 0.2
    assert comparison.execution_time_ratio >= 1.0
    assert 0 <= comparison.replacement_miss_rate("wi") <= 1
