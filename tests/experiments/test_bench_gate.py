"""The bench --against result gate: timing is soft, results are hard.

(Timing only becomes hard when the caller opts in with --tolerance;
those cases are covered at the bottom.)
"""

import copy

import pytest

from repro.experiments.bench import compare_bench_results, timing_regressions


def _snapshot(**overrides):
    doc = {
        "schema": "repro-bench/1",
        "created": "2026-08-06T00:00:00+00:00",
        "suite": "figure5",
        "preset": "tiny",
        "serial_wall_time_s": 2.0,
        "runs": [
            {
                "label": "mp3d/W-I",
                "wall_time_s": 0.5,
                "events_per_sec": 50_000,
                "events_processed": 36_250,
                "execution_time": 11_265,
                "network_bits": 1_000_000,
                "counters": {"read_misses": 10, "writebacks": 3},
            },
            {
                "label": "mp3d/AD",
                "wall_time_s": 0.4,
                "events_per_sec": 60_000,
                "events_processed": 29_842,
                "execution_time": 7_445,
                "network_bits": 800_000,
                "counters": {"read_misses": 9, "nominations": 4},
            },
        ],
    }
    doc.update(overrides)
    return doc


def test_identical_results_pass():
    old = _snapshot()
    new = copy.deepcopy(old)
    assert compare_bench_results(old, new) == []


def test_timing_drift_alone_passes():
    # Wall times and throughput are measurements, not results.
    old = _snapshot()
    new = copy.deepcopy(old)
    new["serial_wall_time_s"] = 37.0
    for run in new["runs"]:
        run["wall_time_s"] *= 10
        run["events_per_sec"] //= 10
    assert compare_bench_results(old, new) == []


def test_execution_time_change_fails():
    old = _snapshot()
    new = copy.deepcopy(old)
    new["runs"][0]["execution_time"] += 1
    problems = compare_bench_results(old, new)
    assert len(problems) == 1
    assert "mp3d/W-I" in problems[0] and "execution_time" in problems[0]


def test_counter_change_fails_with_named_counter():
    old = _snapshot()
    new = copy.deepcopy(old)
    new["runs"][1]["counters"]["nominations"] = 5
    problems = compare_bench_results(old, new)
    assert len(problems) == 1
    assert "nominations" in problems[0] and "mp3d/AD" in problems[0]


def test_missing_counter_fails():
    old = _snapshot()
    new = copy.deepcopy(old)
    del new["runs"][0]["counters"]["writebacks"]
    problems = compare_bench_results(old, new)
    assert len(problems) == 1
    assert "writebacks" in problems[0]


def test_new_label_skipped():
    old = _snapshot()
    new = copy.deepcopy(old)
    new["runs"].append(
        {
            "label": "barnes/W-I",
            "wall_time_s": 0.1,
            "events_per_sec": 1,
            "events_processed": 1,
            "execution_time": 1,
            "network_bits": 1,
            "counters": {},
        }
    )
    assert compare_bench_results(old, new) == []


def test_preset_mismatch_is_one_clear_failure():
    old = _snapshot()
    new = _snapshot(preset="default")
    problems = compare_bench_results(old, new)
    assert len(problems) == 1
    assert "preset" in problems[0]


def test_tolerance_passes_within_threshold():
    old = _snapshot()
    new = copy.deepcopy(old)
    for run in new["runs"]:
        run["wall_time_s"] *= 1.1  # 10% slower
    new["serial_wall_time_s"] *= 1.1
    assert timing_regressions(old, new, 0.25) == []


def test_tolerance_fails_slow_run_with_named_label():
    old = _snapshot()
    new = copy.deepcopy(old)
    new["runs"][1]["wall_time_s"] = 0.4 * 2  # mp3d/AD doubled
    problems = timing_regressions(old, new, 0.25)
    assert len(problems) == 1
    assert "mp3d/AD" in problems[0]


def test_tolerance_fails_total_drift():
    old = _snapshot()
    new = copy.deepcopy(old)
    new["serial_wall_time_s"] = 4.0  # total doubled, per-run unchanged
    problems = timing_regressions(old, new, 0.5)
    assert len(problems) == 1
    assert "total serial wall" in problems[0]


def test_tolerance_ignores_speedups_and_new_labels():
    old = _snapshot()
    new = copy.deepcopy(old)
    for run in new["runs"]:
        run["wall_time_s"] /= 10  # faster never fails
    new["serial_wall_time_s"] /= 10
    new["runs"].append({"label": "barnes/W-I", "wall_time_s": 99.0})
    assert timing_regressions(old, new, 0.0) == []


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError):
        timing_regressions(_snapshot(), _snapshot(), -0.1)


# ---------------------------------------------------------------------------
# Host-comparability warnings (informational, never gate failures)


from repro.experiments.bench import host_warnings


def _hosted(cpu=8, platform="Linux-6.18-x86_64", python="3.11.9", fast="pure-python"):
    doc = _snapshot(fast_path=fast)
    doc["host"] = {"cpu_count": cpu, "platform": platform, "python": python}
    return doc


def test_same_host_yields_no_warnings():
    assert host_warnings(_hosted(), _hosted()) == []


def test_each_host_field_mismatch_warns():
    old = _hosted()
    warnings = host_warnings(old, _hosted(cpu=32))
    assert len(warnings) == 1 and "CPU count" in warnings[0]
    assert "8" in warnings[0] and "32" in warnings[0]
    assert "informational only" in warnings[0]
    assert any("platform" in w
               for w in host_warnings(old, _hosted(platform="Darwin-arm64")))
    assert any("Python" in w for w in host_warnings(old, _hosted(python="3.12.1")))
    assert any("fast-path" in w for w in host_warnings(old, _hosted(fast="mypyc")))


def test_all_fields_differ_warns_once_each():
    warnings = host_warnings(
        _hosted(), _hosted(cpu=2, platform="p2", python="q2", fast="mypyc")
    )
    assert len(warnings) == 4


def test_missing_host_metadata_compares_as_none():
    # Old snapshots from before host recording: every field reads None,
    # so comparing two legacy snapshots stays quiet...
    legacy = _snapshot()
    assert host_warnings(legacy, legacy) == []
    # ...but legacy vs modern flags the change.
    warnings = host_warnings(legacy, _hosted())
    assert len(warnings) == 4
    assert all("None" in w for w in warnings)


def test_host_mismatch_does_not_gate():
    old, new = _hosted(), _hosted(cpu=128, fast="mypyc")
    assert host_warnings(old, new)
    assert compare_bench_results(old, new) == []
