"""The ``repro-sim serve`` daemon, end to end over real HTTP.

The server runs on an asyncio loop in a background thread bound to an
ephemeral port; the stdlib ``ServeClient`` talks to it exactly as a
remote submitter would.  Under test: batch submission, cross-submission
dedupe by content address, cache-backed instant resolution on resubmit,
NDJSON progress streaming, and result fingerprints matching a local run.
"""

import asyncio
import contextlib
import threading

import pytest

from repro.core.policy import ProtocolPolicy
from repro.experiments.parallel import RunSpec, execute_spec, result_fingerprint
from repro.experiments.store import CODE_VERSION_ENV, ResultStore, spec_key
from repro.serve import ExperimentServer, ServeClient
from repro.serve.client import ServeError


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    monkeypatch.setenv(CODE_VERSION_ENV, "serve-test-rev")


@contextlib.contextmanager
def running_server(store, workers=1, **server_kwargs):
    """An ExperimentServer on an ephemeral port, loop in a daemon thread."""
    srv = ExperimentServer(store, workers=workers, port=0, **server_kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def main():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield srv
    finally:
        asyncio.run_coroutine_threadsafe(srv.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@pytest.fixture
def server(tmp_path):
    with running_server(ResultStore(tmp_path / "cache")) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServeClient(f"http://127.0.0.1:{server.port}")


def tiny_specs():
    return [
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.adaptive_default(),
            preset="tiny", iterations=6, tag="mig/AD",
        ),
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.write_invalidate(),
            preset="tiny", iterations=6, tag="mig/W-I",
        ),
    ]


def test_serve_end_to_end(server, client):
    health = client.healthz()
    assert health["ok"] and health["workers"] == 1

    specs = tiny_specs()
    duplicated = specs + [specs[0]]  # 3 submissions, 2 unique cells
    job = client.submit_specs(duplicated)
    assert job["total"] == 3
    status = client.wait(job["job"], timeout=120)
    assert status["complete"]
    assert status["finished"] == 3
    assert all(c["status"] == "done" for c in status["cells"])
    # The duplicate attached to the existing cell instead of re-running.
    assert status["cells"][0]["key"] == status["cells"][2]["key"]
    stats = client.stats()
    assert stats["specs_submitted"] == 3
    assert stats["specs_deduped"] == 1
    assert stats["cells"] == 2

    # Served results are byte-identical to a local fresh simulation.
    entry = client.result(spec_key(specs[0]))
    assert entry["fingerprint"] == result_fingerprint(
        execute_spec(specs[0]).unwrap()
    )

    # The stream replays one event per unique finished cell, then job-done.
    events = list(client.stream(job["job"]))
    assert [e["event"] for e in events[:-1]] == ["cell"] * 2
    assert all(e["status"] == "done" for e in events[:-1])
    assert [e["seq"] for e in events] == [0, 1, 2]
    assert events[-1] == {
        "event": "job-done", "job": job["job"], "total": 3,
        "seq": 2, "cancelled": False,
    }

    # Resubmission to the same server attaches to the completed in-memory
    # cells — instantly complete, nothing re-simulated.
    rerun = client.submit_specs(specs)
    assert rerun["complete"]
    assert all(c["status"] == "done" for c in rerun["cells"])
    assert client.stats()["specs_deduped"] == 3

    # A *fresh* daemon over the same store directory resolves the whole
    # batch from the persistent cache without touching a worker.
    with running_server(ResultStore(server.store.root)) as second:
        warm_client = ServeClient(f"http://127.0.0.1:{second.port}")
        warm = warm_client.submit_specs(specs)
        assert warm["complete"]
        assert all(c["status"] == "cached" for c in warm["cells"])
        assert warm_client.stats()["cache"]["hits"] == 2
        # And the served entry is still the verified original.
        entry = warm_client.result(spec_key(specs[0]))
        assert entry["fingerprint"] == result_fingerprint(
            execute_spec(specs[0]).unwrap()
        )


def test_serve_shorthand_specs(server, client):
    job = client.submit([
        {
            "workload": "migratory-counters",
            "policy": "AD",
            "consistency": "SC",
            "preset": "tiny",
            "overrides": {"iterations": 6},
        }
    ])
    status = client.wait(job["job"], timeout=120)
    assert status["cells"][0]["status"] == "done"
    # The shorthand keys identically to the equivalent RunSpec.
    assert status["cells"][0]["key"] == spec_key(
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.adaptive_default(),
            preset="tiny", iterations=6,
        )
    )


def test_serve_failed_cell_reported_not_fatal(server, client):
    job = client.submit([
        {"workload": "no-such-workload", "policy": "AD", "preset": "tiny"}
    ])
    status = client.wait(job["job"], timeout=120)
    [cell] = status["cells"]
    assert cell["status"] == "failed"
    assert "no-such-workload" in cell["error"]
    assert client.healthz()["ok"]  # daemon survived the failure


def test_serve_rejects_bad_requests(server, client):
    with pytest.raises(ServeError) as excinfo:
        client.submit([])
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.submit([{"policy": "AD"}])  # no workload
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.job("job-999")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client.result("0" * 64)
    assert excinfo.value.status == 404


# ---------------------------------------------------------------------------
# Resilience: crash requeue, deadlines, cancellation, chaos, client retries


import io
import time
import urllib.error

import tests.experiments.chaos_workloads  # noqa: F401 - registers test workloads

from repro.experiments.parallel import run_many
from repro.serve import ServeFaultPlan, ServeUnavailable
from repro.serve.client import _error_body


def _hang_spec(seed, seconds=30.0):
    return RunSpec.make(
        "test-hang", ProtocolPolicy.adaptive_default(),
        preset="tiny", seconds=seconds, seed=seed,
    )


def test_serve_worker_kill_requeues_and_matches_undisturbed_run(tmp_path):
    """Acceptance: a cell whose worker is killed by ServeFaultPlan is
    requeued on a rebuilt pool and its result is byte-identical (same
    fingerprint) to an undisturbed local run."""
    faults = ServeFaultPlan(seed=11, kill_fraction=1.0, max_kills=1,
                            kill_delay=0.02)
    # The first cell sleeps long enough that the 20ms-delayed kill lands
    # while it is still executing; the rest are ordinary tiny cells.
    specs = [_hang_spec(seed=9, seconds=0.75)] + tiny_specs()
    with running_server(ResultStore(tmp_path / "cache"), faults=faults) as srv:
        client = ServeClient(f"http://127.0.0.1:{srv.port}")
        job = client.submit_specs(specs)
        status = client.wait(job["job"], timeout=120)
        assert status["complete"]
        assert all(c["status"] == "done" for c in status["cells"])
        # The kill actually happened and was recovered from.
        scheduler = client.stats()["scheduler"]
        assert scheduler["fault_kills"] == 1
        assert scheduler["worker_crashes"] >= 1
        assert scheduler["requeues"] >= 1
        assert scheduler["executor_rebuilds"] >= 1
        # A requeued cell consumed more than one attempt.
        assert max(c["attempts"] for c in status["cells"]) >= 2
        for spec in specs:
            entry = client.result(spec_key(spec))
            assert entry["fingerprint"] == result_fingerprint(
                execute_spec(spec).unwrap()
            )


def test_serve_cell_timeout_requeues_then_fails_with_attempts(tmp_path):
    with running_server(
        ResultStore(tmp_path / "cache"),
        cell_timeout=0.5, max_attempts=2,
    ) as srv:
        client = ServeClient(f"http://127.0.0.1:{srv.port}")
        job = client.submit_specs([_hang_spec(seed=1)])
        status = client.wait(job["job"], timeout=60)
        [cell] = status["cells"]
        assert cell["status"] == "failed"
        assert cell["attempts"] == 2
        assert "CellTimeout" in cell["error"]
        assert "0.5s per-cell deadline" in cell["error"]
        assert "gave up after 2 attempt(s)" in cell["error"]
        scheduler = client.stats()["scheduler"]
        assert scheduler["timeouts"] == 2
        assert scheduler["requeues"] == 1
        assert scheduler["executor_rebuilds"] == 2
        # The daemon survived and still serves healthy cells.
        healthy = client.submit_specs([tiny_specs()[0]])
        done = client.wait(healthy["job"], timeout=120)
        assert done["cells"][0]["status"] == "done"


def test_serve_delete_cancels_queued_cells_and_resubmit_revives(tmp_path):
    with running_server(ResultStore(tmp_path / "cache"), workers=1) as srv:
        client = ServeClient(f"http://127.0.0.1:{srv.port}")
        # One slot: the first hang occupies it, the rest sit queued.
        specs = [_hang_spec(seed=s) for s in (1, 2, 3)]
        job = client.submit_specs(specs)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if any(c["status"] == "running"
                   for c in client.job(job["job"])["cells"]):
                break
            time.sleep(0.02)
        cancelled = client.cancel(job["job"])
        assert cancelled["cancelled"]
        counts = cancelled["counts"]
        # The running cell keeps its worker; the queued ones are dropped.
        assert counts.get("cancelled", 0) == 2
        by_status = {c["key"]: c for c in cancelled["cells"]}
        dropped = [c for c in cancelled["cells"] if c["status"] == "cancelled"]
        assert all("cancelled by client" in c["error"] for c in dropped)
        assert client.stats()["scheduler"]["cancelled_jobs"] == 1
        # Cancelling again is idempotent.
        assert client.cancel(job["job"])["counts"] == counts
        # A new submission revives a cancelled cell instead of serving
        # the stale terminal state.
        revived = client.submit_specs([specs[1]])
        status = {c["key"]: c["status"] for c in revived["cells"]}
        assert set(status.values()) <= {"queued", "running"}


def test_serve_stream_resumes_across_dropped_frames(tmp_path):
    faults = ServeFaultPlan(seed=5, drop_frame_fraction=1.0, max_drops=2)
    with running_server(ResultStore(tmp_path / "cache"), faults=faults) as srv:
        client = ServeClient(f"http://127.0.0.1:{srv.port}")
        specs = tiny_specs()
        job = client.submit_specs(specs)
        client.wait(job["job"], timeout=120)
        events = list(client.stream(job["job"]))
        # Exactly once, in order, despite two dropped connections.
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[-1]["event"] == "job-done"
        assert client.stats()["faults"]["drops"] == 2


def test_error_body_prefers_payload_over_status_line():
    def http_error(body):
        return urllib.error.HTTPError(
            "http://x/jobs", 500, "Internal Server Error",
            {}, io.BytesIO(body),
        )

    assert _error_body(http_error(b'{"error": "boom"}')) == {"error": "boom"}
    # Satellite: a non-JSON body (traceback, proxy page) is surfaced
    # verbatim instead of being collapsed to the reason phrase.
    assert _error_body(http_error(b"Traceback: stack trace text\n")) == (
        "Traceback: stack trace text"
    )
    assert _error_body(http_error(b"")) == "Internal Server Error"


def test_client_reports_unreachable_daemon(tmp_path):
    client = ServeClient("http://127.0.0.1:1", timeout=0.5, retries=1)
    with pytest.raises(ServeUnavailable, match="GET .*healthz"):
        client.healthz()


def test_run_many_serve_backend_executes_remotely_and_warms_local_store(
    tmp_path,
):
    specs = tiny_specs()
    with running_server(ResultStore(tmp_path / "daemon-cache")) as srv:
        local = ResultStore(tmp_path / "local-cache")
        outcomes = run_many(
            specs, store=local, backend="serve",
            serve_url=f"http://127.0.0.1:{srv.port}",
        )
        assert all(o.ok and o.cached for o in outcomes)
        for spec, outcome in zip(specs, outcomes):
            assert result_fingerprint(outcome.unwrap()) == result_fingerprint(
                execute_spec(spec).unwrap()
            )
        # Remote results warmed the local store: a second sweep is local.
        assert local.stats.stores == 2
        rerun = run_many(specs, store=ResultStore(local.root),
                         backend="serve", serve_url="http://127.0.0.1:1")
        assert all(o.ok and o.cached for o in rerun)


def test_run_many_serve_backend_falls_back_to_local(capsys):
    specs = tiny_specs()
    outcomes = run_many(specs, backend="serve",
                        serve_url="http://127.0.0.1:1")
    assert all(o.ok for o in outcomes)
    assert not any(o.cached for o in outcomes)
    assert "falling back to local execution" in capsys.readouterr().err
    for spec, outcome in zip(specs, outcomes):
        assert result_fingerprint(outcome.unwrap()) == result_fingerprint(
            execute_spec(spec).unwrap()
        )


# ---------------------------------------------------------------------------
# Telemetry: /metrics scrape, artifact upload, correlation ids


import urllib.request

from repro.obs.metrics import MetricsRegistry, parse_exposition, sample_count


def test_metrics_endpoint_scrapes_job_lifecycle(tmp_path):
    """Acceptance: a real-HTTP scrape parses as Prometheus text, exposes a
    wide series surface, and the job-lifecycle counters actually move."""
    registry = MetricsRegistry()
    store = ResultStore(tmp_path / "cache", metrics_registry=registry)
    with running_server(store, registry=registry) as srv:
        client = ServeClient(f"http://127.0.0.1:{srv.port}")

        before = parse_exposition(client.metrics())
        assert before["repro_serve_jobs_submitted_total"].value() == 0

        job = client.submit_specs(tiny_specs())
        status = client.wait(job["job"], timeout=120)
        assert status["complete"]

        # Raw urllib fetch: assert the content type advertises the format.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{srv.port}/metrics", timeout=10
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode()

        families = parse_exposition(text)
        # The ISSUE's floor: at least 20 distinct series on a fresh daemon.
        assert sample_count(families) >= 20
        assert families["repro_serve_jobs_submitted_total"].value() == 1
        assert families["repro_serve_jobs_finished_total"].value() == 1
        assert families["repro_serve_specs_submitted_total"].value() == 2
        assert families["repro_serve_cells_total"].value({"status": "done"}) == 2
        assert families["repro_serve_cell_seconds"].value(
            sample_name="repro_serve_cell_seconds_count"
        ) == 2
        # HTTP traffic is labeled by normalized route, not raw path.
        http = families["repro_http_requests_total"]
        assert http.value({"route": "/metrics"}) >= 2
        assert http.value({"route": "/jobs"}) == 1
        assert http.value({"route": "/jobs/{id}"}) >= 1
        # The store served through this daemon reports its own counters.
        assert families["repro_store_stores_total"].value() == 2
        # Worker/queue gauges evaluate at scrape time.
        assert families["repro_serve_workers"].value() == 1
        assert families["repro_serve_cells_running"].value() == 0


def test_artifact_upload_roundtrip_over_http(tmp_path):
    registry = MetricsRegistry()
    store = ResultStore(tmp_path / "cache", metrics_registry=registry)
    with running_server(store, registry=registry) as srv:
        client = ServeClient(f"http://127.0.0.1:{srv.port}")
        spec = tiny_specs()[0]
        job = client.submit_specs([spec])
        client.wait(job["job"], timeout=120)
        key = spec_key(spec)

        payload = b"\x00\x01binary trace bytes\xff"
        receipt = client.put_artifact(key, "trace.bin", payload)
        assert receipt == {"key": key, "name": "trace.bin", "bytes": len(payload)}
        client.put_artifact(key, "notes.txt", "plain text artifact")

        assert client.artifacts(key) == ["notes.txt", "trace.bin"]
        assert client.get_artifact(key, "trace.bin") == payload
        assert client.get_artifact(key, "notes.txt") == b"plain text artifact"
        # The bytes landed in the store's artifact dir for the cell.
        assert store.get_artifact(key, "trace.bin") == payload

        with pytest.raises(ServeError) as excinfo:
            client.put_artifact(key, "../escape", b"nope")
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.get_artifact(key, "missing.bin")
        assert excinfo.value.status == 404


def test_correlation_id_threads_client_to_job(tmp_path):
    registry = MetricsRegistry()
    store = ResultStore(tmp_path / "cache", metrics_registry=registry)
    with running_server(store, registry=registry) as srv:
        client = ServeClient(f"http://127.0.0.1:{srv.port}", cid="sweep-e2e42")
        job = client.submit_specs([tiny_specs()[0]])
        client.wait(job["job"], timeout=120)
        rows = client._request("GET", "/jobs")["jobs"]
        assert [r["cid"] for r in rows] == ["sweep-e2e42"]
        assert rows[0]["complete"] and rows[0]["total"] == 1
