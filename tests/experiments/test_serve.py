"""The ``repro-sim serve`` daemon, end to end over real HTTP.

The server runs on an asyncio loop in a background thread bound to an
ephemeral port; the stdlib ``ServeClient`` talks to it exactly as a
remote submitter would.  Under test: batch submission, cross-submission
dedupe by content address, cache-backed instant resolution on resubmit,
NDJSON progress streaming, and result fingerprints matching a local run.
"""

import asyncio
import contextlib
import threading

import pytest

from repro.core.policy import ProtocolPolicy
from repro.experiments.parallel import RunSpec, execute_spec, result_fingerprint
from repro.experiments.store import CODE_VERSION_ENV, ResultStore, spec_key
from repro.serve import ExperimentServer, ServeClient
from repro.serve.client import ServeError


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    monkeypatch.setenv(CODE_VERSION_ENV, "serve-test-rev")


@contextlib.contextmanager
def running_server(store, workers=1):
    """An ExperimentServer on an ephemeral port, loop in a daemon thread."""
    srv = ExperimentServer(store, workers=workers, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def main():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield srv
    finally:
        asyncio.run_coroutine_threadsafe(srv.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@pytest.fixture
def server(tmp_path):
    with running_server(ResultStore(tmp_path / "cache")) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServeClient(f"http://127.0.0.1:{server.port}")


def tiny_specs():
    return [
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.adaptive_default(),
            preset="tiny", iterations=6, tag="mig/AD",
        ),
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.write_invalidate(),
            preset="tiny", iterations=6, tag="mig/W-I",
        ),
    ]


def test_serve_end_to_end(server, client):
    health = client.healthz()
    assert health["ok"] and health["workers"] == 1

    specs = tiny_specs()
    duplicated = specs + [specs[0]]  # 3 submissions, 2 unique cells
    job = client.submit_specs(duplicated)
    assert job["total"] == 3
    status = client.wait(job["job"], timeout=120)
    assert status["complete"]
    assert status["finished"] == 3
    assert all(c["status"] == "done" for c in status["cells"])
    # The duplicate attached to the existing cell instead of re-running.
    assert status["cells"][0]["key"] == status["cells"][2]["key"]
    stats = client.stats()
    assert stats["specs_submitted"] == 3
    assert stats["specs_deduped"] == 1
    assert stats["cells"] == 2

    # Served results are byte-identical to a local fresh simulation.
    entry = client.result(spec_key(specs[0]))
    assert entry["fingerprint"] == result_fingerprint(
        execute_spec(specs[0]).unwrap()
    )

    # The stream replays one event per unique finished cell, then job-done.
    events = list(client.stream(job["job"]))
    assert [e["event"] for e in events[:-1]] == ["cell"] * 2
    assert all(e["status"] == "done" for e in events[:-1])
    assert events[-1] == {"event": "job-done", "job": job["job"], "total": 3}

    # Resubmission to the same server attaches to the completed in-memory
    # cells — instantly complete, nothing re-simulated.
    rerun = client.submit_specs(specs)
    assert rerun["complete"]
    assert all(c["status"] == "done" for c in rerun["cells"])
    assert client.stats()["specs_deduped"] == 3

    # A *fresh* daemon over the same store directory resolves the whole
    # batch from the persistent cache without touching a worker.
    with running_server(ResultStore(server.store.root)) as second:
        warm_client = ServeClient(f"http://127.0.0.1:{second.port}")
        warm = warm_client.submit_specs(specs)
        assert warm["complete"]
        assert all(c["status"] == "cached" for c in warm["cells"])
        assert warm_client.stats()["cache"]["hits"] == 2
        # And the served entry is still the verified original.
        entry = warm_client.result(spec_key(specs[0]))
        assert entry["fingerprint"] == result_fingerprint(
            execute_spec(specs[0]).unwrap()
        )


def test_serve_shorthand_specs(server, client):
    job = client.submit([
        {
            "workload": "migratory-counters",
            "policy": "AD",
            "consistency": "SC",
            "preset": "tiny",
            "overrides": {"iterations": 6},
        }
    ])
    status = client.wait(job["job"], timeout=120)
    assert status["cells"][0]["status"] == "done"
    # The shorthand keys identically to the equivalent RunSpec.
    assert status["cells"][0]["key"] == spec_key(
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.adaptive_default(),
            preset="tiny", iterations=6,
        )
    )


def test_serve_failed_cell_reported_not_fatal(server, client):
    job = client.submit([
        {"workload": "no-such-workload", "policy": "AD", "preset": "tiny"}
    ])
    status = client.wait(job["job"], timeout=120)
    [cell] = status["cells"]
    assert cell["status"] == "failed"
    assert "no-such-workload" in cell["error"]
    assert client.healthz()["ok"]  # daemon survived the failure


def test_serve_rejects_bad_requests(server, client):
    with pytest.raises(ServeError) as excinfo:
        client.submit([])
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.submit([{"policy": "AD"}])  # no workload
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.job("job-999")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client.result("0" * 64)
    assert excinfo.value.status == 404
