"""Content-addressed result store: cache keys, round trips, corruption.

The contract under test: a spec's key covers everything that determines
its result (effective config, workload + canonicalized overrides, seed,
code version) and nothing else — permuted override dicts and equivalent
config spellings key identically, while seed or code-version changes
key differently.  And a cache hit is byte-identical to a fresh
simulation (same ``result_fingerprint``) or it is not served at all.
"""

import json

import pytest

from repro.consistency.models import model_by_name
from repro.core.policy import ProtocolPolicy
from repro.experiments.parallel import (
    RunSpec,
    execute_spec,
    result_fingerprint,
    run_many,
)
from repro.experiments.store import (
    CODE_VERSION_ENV,
    ResultStore,
    cell_identity,
    code_version,
    spec_from_json,
    spec_key,
    spec_to_json,
)
from repro.machine.config import MachineConfig


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    """Pin the code version: key tests stay stable and skip the source scan."""
    monkeypatch.setenv(CODE_VERSION_ENV, "test-rev-1")


def mig_spec(**kwargs):
    defaults = dict(preset="tiny", seed=7, iterations=6)
    defaults.update(kwargs)
    return RunSpec.make(
        "migratory-counters", ProtocolPolicy.adaptive_default(), **defaults
    )


# -- cache-key canonicalization -----------------------------------------


def test_permuted_override_dicts_key_identically():
    a = mig_spec(knobs={"beta": 2, "alpha": 1}, order=[3, 1])
    b = mig_spec(order=[3, 1], knobs={"alpha": 1, "beta": 2})
    assert a == b  # frozen form is insertion-order independent
    assert hash(a) == hash(b)  # the "stays hashable" contract
    assert cell_identity(a) == cell_identity(b)
    assert spec_key(a) == spec_key(b)


def test_equivalent_config_spellings_key_identically():
    implicit = mig_spec()  # config=None -> dash default at run time
    explicit = mig_spec(config=MachineConfig.dash_default())
    # run_workload folds the spec's policy into the config either way.
    prefolded = mig_spec(
        config=MachineConfig.dash_default(
            policy=ProtocolPolicy.adaptive_default()
        )
    )
    assert spec_key(implicit) == spec_key(explicit) == spec_key(prefolded)


def test_seed_config_and_code_version_perturb_key(monkeypatch):
    base = mig_spec()
    assert spec_key(mig_spec(seed=8)) != spec_key(base)
    assert spec_key(mig_spec(iterations=7)) != spec_key(base)
    different_machine = mig_spec(
        config=MachineConfig.dash_default(mesh_width=2, mesh_height=2)
    )
    assert spec_key(different_machine) != spec_key(base)
    key_v1 = spec_key(base)
    monkeypatch.setenv(CODE_VERSION_ENV, "test-rev-2")
    assert code_version() == "test-rev-2"
    assert spec_key(base) != key_v1  # a code change invalidates the cache


def test_check_coherence_part_of_effective_config_key():
    # The checker shapes nothing observable, but it IS part of the machine
    # the spec builds — keep the key honest rather than clever.
    assert spec_key(mig_spec(check_coherence=True)) != spec_key(
        mig_spec(check_coherence=False)
    )


def test_spec_wire_round_trip_preserves_key():
    spec = mig_spec(knobs={"beta": 2, "alpha": 1})
    rebuilt = spec_from_json(json.loads(json.dumps(spec_to_json(spec))))
    assert rebuilt == spec
    assert spec_key(rebuilt) == spec_key(spec)


def _protocol_spec(policy):
    return RunSpec.make(
        "migratory-counters", policy, preset="tiny", seed=7, iterations=6
    )


def test_protocol_field_perturbs_key():
    """Every protocol in the family content-addresses differently."""
    from repro.protocols import default_policies

    keys = {spec_key(_protocol_spec(p)) for p in default_policies()}
    assert len(keys) == len(default_policies())
    # The hybrid's threshold is behavioural, so it is part of the key too.
    assert spec_key(
        _protocol_spec(ProtocolPolicy.hybrid(update_threshold=4))
    ) != spec_key(_protocol_spec(ProtocolPolicy.hybrid()))


def test_legacy_policy_dict_does_not_alias_new_protocols():
    """Pre-framework wire dicts (no ``protocol``/``update_threshold``
    fields) must deserialize to the W-I/AD family and never collide with
    a new protocol's content address."""
    from repro.protocols import policy_for

    doc = spec_to_json(mig_spec())
    doc["policy"] = {
        key: doc["policy"][key]
        for key in ("adaptive", "rxq_reverts_to_ordinary", "nomig_enabled")
    }
    legacy = spec_from_json(json.loads(json.dumps(doc)))
    assert legacy.policy == ProtocolPolicy.adaptive_default()
    assert spec_key(legacy) == spec_key(mig_spec())
    for name in ("mesi", "dragon", "hybrid"):
        assert spec_key(legacy) != spec_key(_protocol_spec(policy_for(name)))


def test_spec_from_json_accepts_shorthand_names():
    doc = {
        "workload": "migratory-counters",
        "policy": "W-I",
        "consistency": "SC",
        "preset": "tiny",
        "seed": 7,
        "overrides": {"iterations": 6},
    }
    spec = spec_from_json(doc)
    assert spec.policy == ProtocolPolicy.write_invalidate()
    assert spec.consistency == model_by_name("SC")
    assert spec_key(spec) == spec_key(
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.write_invalidate(),
            preset="tiny", seed=7, consistency=model_by_name("SC"),
            iterations=6,
        )
    )


# -- cold -> warm round trip --------------------------------------------


def sweep_specs():
    return [
        mig_spec(tag="mig/AD"),
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.write_invalidate(),
            preset="tiny", seed=7, iterations=6, tag="mig/W-I",
        ),
        RunSpec.make(
            "producer-consumer", ProtocolPolicy.adaptive_default(),
            preset="tiny", rounds=4, tag="pc/AD",
        ),
    ]


def test_cold_then_warm_run_many_is_byte_identical(tmp_path):
    specs = sweep_specs()
    cold_store = ResultStore(tmp_path / "cache")
    cold = run_many(specs, store=cold_store)
    assert all(o.ok and not o.cached for o in cold)
    assert cold_store.stats.misses == len(specs)
    assert cold_store.stats.stores == len(specs)
    assert len(cold_store) == len(specs)

    # A fresh store instance on the same directory: everything persisted.
    warm_store = ResultStore(tmp_path / "cache")
    warm = run_many(specs, store=warm_store)
    assert all(o.ok and o.cached for o in warm)
    assert warm_store.stats.hits == len(specs)
    assert warm_store.stats.misses == 0
    assert warm_store.stats.hit_rate == 1.0
    for fresh, served in zip(cold, warm):
        assert result_fingerprint(fresh.unwrap()) == result_fingerprint(
            served.unwrap()
        )


def test_corrupt_entry_recomputed_not_served(tmp_path):
    spec = mig_spec()
    store = ResultStore(tmp_path / "cache")
    run_many([spec], store=store)
    path = store.entry_path(spec_key(spec))

    # Truncation: unparseable JSON.
    original = path.read_text()
    path.write_text(original[: len(original) // 2])
    assert store.fetch(spec) is None
    assert store.stats.corrupt == 1
    assert not path.exists()  # evicted, so the cell will be recomputed

    # Tampering: valid JSON whose result no longer matches the stored
    # fingerprint must not be served either.
    [fresh] = run_many([spec], store=store)
    entry = json.loads(path.read_text())
    entry["result"]["execution_time"] += 1
    path.write_text(json.dumps(entry))
    assert store.fetch(spec) is None
    assert store.stats.corrupt == 2

    # Recompute and re-warm: back to serving verified hits.
    [recomputed] = run_many([spec], store=store)
    assert recomputed.ok and not recomputed.cached
    served = store.fetch(spec)
    assert served is not None and served.cached
    assert result_fingerprint(served.unwrap()) == result_fingerprint(
        fresh.unwrap()
    )


def test_failed_outcome_is_not_stored(tmp_path):
    store = ResultStore(tmp_path / "cache")
    bad = RunSpec.make("no-such-workload", ProtocolPolicy.adaptive_default())
    [outcome] = run_many([bad], store=store)
    assert not outcome.ok
    assert store.put(outcome) is None
    assert len(store) == 0
    # And the failure is not "cached": a second attempt runs again.
    assert store.fetch(bad) is None


def test_artifacts_round_trip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = spec_key(mig_spec())
    store.put_artifact(key, "trace.json", '{"spans": []}')
    store.put_artifact(key, "metrics.csv", b"t,value\n")
    assert store.list_artifacts(key) == ["metrics.csv", "trace.json"]
    with pytest.raises(ValueError, match="plain filename"):
        store.put_artifact(key, "../escape", "x")
    with pytest.raises(ValueError, match="plain filename"):
        store.put_artifact(key, ".hidden", "x")


def test_store_summary_and_clear(tmp_path):
    store = ResultStore(tmp_path / "cache")
    run_many(sweep_specs(), store=store)
    doc = store.summary()
    assert doc["entries"] == 3
    assert doc["stores"] == 3
    assert doc["size_bytes"] > 0
    assert doc["code_version"] == "test-rev-1"
    json.dumps(doc)  # CI uploads this verbatim
    assert store.clear() == 3
    assert len(store) == 0


def test_execute_spec_matches_cached_execute(tmp_path):
    """The fingerprint stored is exactly what a direct run produces."""
    spec = mig_spec()
    store = ResultStore(tmp_path / "cache")
    run_many([spec], store=store)
    entry = store.load_entry(spec_key(spec))
    direct = execute_spec(spec).unwrap()
    assert entry["fingerprint"] == result_fingerprint(direct)


# -- size-bounded LRU eviction ------------------------------------------


def test_prune_evicts_least_recently_fetched_first(tmp_path):
    import os
    import time

    specs = sweep_specs()
    store = ResultStore(tmp_path / "cache")
    run_many(specs, store=store)
    paths = [store.entry_path(spec_key(s)) for s in specs]
    # Stagger recency explicitly: specs[0] oldest, specs[2] newest.
    now = time.time()
    for age, path in zip((300, 200, 100), paths):
        os.utime(path, (now - age, now - age))

    # A verified fetch refreshes recency, so the true LRU is now specs[1].
    assert store.fetch(specs[0]) is not None

    sizes = [p.stat().st_size for p in paths]
    budget = sum(sizes) - 1  # one entry over budget -> evict exactly one
    report = store.prune(max_bytes=budget)
    assert report["evicted"] == 1
    assert report["evicted_keys"] == [spec_key(specs[1])]
    assert not paths[1].exists()
    assert paths[0].exists() and paths[2].exists()
    assert report["remaining_entries"] == 2
    assert report["remaining_bytes"] <= budget
    assert store.stats.evictions == 1
    assert store.stats.evicted_bytes >= sizes[1]

    # The evicted cell is recomputed, not served; survivors still hit.
    assert store.fetch(specs[1]) is None
    assert store.fetch(specs[2]) is not None


def test_prune_counts_artifact_bytes_and_removes_them(tmp_path):
    import os
    import time

    specs = sweep_specs()[:2]
    store = ResultStore(tmp_path / "cache")
    run_many(specs, store=store)
    old_key, new_key = spec_key(specs[0]), spec_key(specs[1])
    store.put_artifact(old_key, "trace.json", "x" * 4096)
    now = time.time()
    os.utime(store.entry_path(old_key), (now - 100, now - 100))

    entry_bytes = sum(
        store.entry_path(k).stat().st_size for k in (old_key, new_key)
    )
    # Without artifact accounting this budget would keep both entries.
    report = store.prune(max_bytes=entry_bytes)
    assert report["evicted_keys"] == [old_key]
    assert not (store.artifacts / old_key).exists()
    assert store.list_artifacts(old_key) == []
    assert store.stats.evicted_bytes > 4096


def test_prune_noop_when_under_budget(tmp_path):
    store = ResultStore(tmp_path / "cache")
    run_many(sweep_specs(), store=store)
    report = store.prune(max_bytes=10 ** 9)
    assert report["evicted"] == 0 and report["evicted_keys"] == []
    assert report["remaining_entries"] == 3
    assert store.stats.evictions == 0
    summary = store.summary()
    assert summary["evictions"] == 0
