"""Checkpointed sweeps: save on interrupt, resume recomputing only cold cells."""

import json

import pytest

import tests.experiments.chaos_workloads  # noqa: F401 - registers test workloads

from repro.core.policy import ProtocolPolicy
from repro.experiments.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointMismatch,
    SweepCheckpoint,
    SweepInterrupted,
    sweep_identity,
)
from repro.experiments.parallel import RunSpec, run_many
from repro.experiments.store import CODE_VERSION_ENV, ResultStore, spec_key


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    monkeypatch.setenv(CODE_VERSION_ENV, "checkpoint-test-rev")


def _specs():
    return [
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.adaptive_default(),
            preset="tiny", iterations=5, tag="mig/AD",
        ),
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.write_invalidate(),
            preset="tiny", iterations=5, tag="mig/W-I",
        ),
    ]


def test_sweep_identity_tracks_specs_and_code(monkeypatch):
    specs = _specs()
    original = sweep_identity(specs)
    assert original == sweep_identity(_specs())
    assert original != sweep_identity(specs[:1])
    assert original != sweep_identity(list(reversed(specs)))
    # Same spec list, different code version -> different identity.
    monkeypatch.setenv(CODE_VERSION_ENV, "another-rev")
    assert sweep_identity(specs) != original


def test_checkpoint_round_trip_and_document_shape(tmp_path):
    specs = _specs()
    path = tmp_path / "sweep.json"
    checkpoint = SweepCheckpoint(path)
    store = ResultStore(tmp_path / "cache")
    outcomes = run_many(specs, store=store, checkpoint=checkpoint)
    assert all(o.ok for o in outcomes)
    assert checkpoint.complete
    assert checkpoint.counts() == {"done": 2}
    doc = json.loads(path.read_text())
    assert doc["schema"] == CHECKPOINT_SCHEMA
    assert doc["total"] == 2
    assert doc["order"] == [spec_key(s) for s in specs]
    assert doc["cells"][spec_key(specs[0])]["status"] == "done"
    assert doc["cells"][spec_key(specs[0])]["label"] == "mig/AD"

    # Resuming a complete checkpoint over a warm store recomputes nothing.
    resumed = SweepCheckpoint(path, resume=True)
    warm = ResultStore(tmp_path / "cache")
    again = run_many(specs, store=warm, checkpoint=resumed)
    assert all(o.cached for o in again)
    assert warm.stats.hits == 2 and warm.stats.misses == 0
    assert resumed.counts() == {"cached": 2}


def test_resume_rejects_a_different_sweep(tmp_path):
    path = tmp_path / "sweep.json"
    store = ResultStore(tmp_path / "cache")
    run_many(_specs(), store=store, checkpoint=SweepCheckpoint(path))
    mismatched = SweepCheckpoint(path, resume=True)
    with pytest.raises(CheckpointMismatch, match="different sweep"):
        run_many(_specs()[:1], store=store, checkpoint=mismatched)


def test_interrupt_saves_checkpoint_and_resume_recomputes_only_cold(tmp_path):
    """The acceptance path: a sweep killed mid-run relaunches with resume
    and recomputes only the cells the store does not already hold."""
    marker = tmp_path / "interrupt.marker"
    specs = _specs() + [
        RunSpec.make(
            "test-interrupt-once", ProtocolPolicy.adaptive_default(),
            preset="tiny", marker=str(marker), tag="boom",
        ),
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.adaptive_default(),
            preset="tiny", iterations=7, tag="tail",
        ),
    ]
    path = tmp_path / "sweep.json"
    store = ResultStore(tmp_path / "cache")
    with pytest.raises(SweepInterrupted) as excinfo:
        run_many(specs, store=store, checkpoint=SweepCheckpoint(path))
    interrupted = excinfo.value
    # Serial execution: the first two finished, the rest never ran.
    assert [o is not None for o in interrupted.outcomes] == [
        True, True, False, False,
    ]
    assert interrupted.checkpoint.counts() == {"done": 2, "pending": 2}
    assert len(interrupted.checkpoint.cold_keys()) == 2

    # Relaunch with resume: the two warm cells come from the store, only
    # the two cold cells are simulated (the marker now defuses the bomb).
    resumed = SweepCheckpoint(path, resume=True)
    second_store = ResultStore(tmp_path / "cache")
    outcomes = run_many(specs, store=second_store, checkpoint=resumed)
    assert all(o.ok for o in outcomes)
    assert second_store.stats.hits == 2
    assert second_store.stats.misses == 2
    assert [o.cached for o in outcomes] == [True, True, False, False]
    assert resumed.complete
    assert resumed.counts() == {"cached": 2, "done": 2}


def test_interrupt_without_checkpoint_propagates(tmp_path):
    marker = tmp_path / "plain.marker"
    spec = RunSpec.make(
        "test-interrupt-once", ProtocolPolicy.adaptive_default(),
        preset="tiny", marker=str(marker),
    )
    with pytest.raises(KeyboardInterrupt):
        run_many([spec])
