"""Tests for the extension experiment modules (prefetch, scaling, renders)."""

import pytest

from repro.experiments.prefetch import render_prefetch, run_prefetch_comparison
from repro.experiments.scaling import render_scaling, run_scaling


@pytest.fixture(scope="module")
def prefetch_comparison():
    return run_prefetch_comparison(iterations=15, record_lines=1)


def test_prefetch_both_schemes_beat_baseline(prefetch_comparison):
    assert prefetch_comparison.prefetch_speedup > 1.2
    assert prefetch_comparison.adaptive_speedup > 1.2


def test_prefetch_eliminates_write_stall(prefetch_comparison):
    baseline_ws = prefetch_comparison.baseline.aggregate_breakdown.write_stall
    prefetch_ws = prefetch_comparison.prefetch.aggregate_breakdown.write_stall
    assert prefetch_ws < baseline_ws * 0.2


def test_prefetch_counters(prefetch_comparison):
    assert prefetch_comparison.prefetch.counter("prefetches_issued") > 0
    assert prefetch_comparison.baseline.counter("prefetches_issued") == 0


def test_prefetch_render(prefetch_comparison):
    text = render_prefetch(prefetch_comparison)
    assert "rx-prefetch" in text
    assert "AD" in text


@pytest.fixture(scope="module")
def scaling_points():
    return run_scaling(meshes=((2, 2), (4, 4)), iterations=10)


def test_scaling_etr_positive_everywhere(scaling_points):
    for point in scaling_points:
        assert point.etr > 1.2


def test_scaling_migratory_fraction_stable(scaling_points):
    fractions = [p.single_invalidation_fraction for p in scaling_points]
    assert all(f > 0.8 for f in fractions)


def test_scaling_render(scaling_points):
    text = render_scaling(scaling_points)
    assert "2x2" in text
    assert "4x4" in text


def test_prefetch_dropped_when_line_already_owned():
    """A prefetch to an already-writable or in-flight line is a no-op."""
    from repro import Machine, MachineConfig
    from repro.cpu.ops import PrefetchEx, Read, Write

    machine = Machine(MachineConfig.dash_default())
    programs = [iter([Write(0), PrefetchEx(0), Read(0)])]
    programs += [iter(()) for _ in range(15)]
    result = machine.run(programs)
    assert result.counter("prefetches_issued") == 0
    assert result.counter("read_hits") == 1
