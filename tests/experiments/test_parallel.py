"""Parallel experiment runner: determinism, error capture, bench harness.

The core guarantee under test: for a fixed (workload, seed, config), a
run produces identical observables every time — serially, repeated in
one process, and through the multiprocessing pool (parallel results must
be byte-identical to serial).
"""

import json
import math

import pytest

from repro.core.policy import ProtocolPolicy
from repro.experiments.bench import (
    BENCH_SCHEMA,
    diff_bench,
    figure5_suite,
    load_bench,
    render_bench,
    run_bench_suite,
    write_bench,
)
import repro.experiments.parallel as parallel
from repro.experiments.parallel import (
    RunSpec,
    execute_spec,
    freeze_value,
    result_fingerprint,
    run_many,
    run_pairs,
    shutdown_pool,
    thaw_value,
)
from repro.experiments.runner import ProtocolComparison, compare_protocols
from repro.machine.system import RunResult
from repro.stats.counters import Counters


def tiny_specs():
    """A small mixed batch: cheap runs across workloads and policies."""
    return [
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.write_invalidate(),
            iterations=6, tag="mig/W-I",
        ),
        RunSpec.make(
            "migratory-counters", ProtocolPolicy.adaptive_default(),
            iterations=6, tag="mig/AD",
        ),
        RunSpec.make(
            "producer-consumer", ProtocolPolicy.adaptive_default(),
            rounds=4, tag="pc/AD",
        ),
        RunSpec.make(
            "read-only", ProtocolPolicy.write_invalidate(),
            read_rounds=4, tag="ro/W-I",
        ),
    ]


def test_same_spec_twice_is_deterministic():
    spec = tiny_specs()[1]
    first = execute_spec(spec).unwrap()
    second = execute_spec(spec).unwrap()
    assert first.execution_time == second.execution_time
    assert first.counters.as_dict() == second.counters.as_dict()
    assert result_fingerprint(first) == result_fingerprint(second)


def test_parallel_results_identical_to_serial():
    specs = tiny_specs()
    serial = run_many(specs, workers=1)
    parallel = run_many(specs, workers=2)
    assert [o.spec.tag for o in parallel] == [s.tag for s in specs]  # ordering
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert result_fingerprint(s.unwrap()) == result_fingerprint(p.unwrap())


def test_failed_run_is_captured_not_fatal():
    specs = [
        tiny_specs()[0],
        RunSpec.make("no-such-workload", ProtocolPolicy.adaptive_default()),
        tiny_specs()[2],
    ]
    outcomes = run_many(specs, workers=2)
    assert outcomes[0].ok and outcomes[2].ok
    failed = outcomes[1]
    assert not failed.ok
    assert failed.error.exc_type == "ValueError"
    assert "no-such-workload" in failed.error.message
    with pytest.raises(RuntimeError, match="no-such-workload"):
        failed.unwrap()


def test_run_error_carries_coordinates_and_dump_across_processes():
    """A livelocked run in a worker process must come back with its sweep
    coordinates and the full diagnostic dump, not just a string."""
    from repro.machine.config import MachineConfig

    spec = RunSpec.make(
        "migratory-counters",
        ProtocolPolicy.adaptive_default(),
        preset="tiny",
        # A zero-width watchdog window trips on the first event that
        # fires after t=0 with no retirement — a guaranteed LivelockError.
        config=MachineConfig.dash_default(watchdog_window=0),
        seed=5,
    )
    outcomes = run_many([spec, spec], workers=2)  # force the process pool
    for outcome in outcomes:
        assert not outcome.ok
        err = outcome.error
        assert err.exc_type == "LivelockError"
        assert err.workload == "migratory-counters"
        assert err.policy == "AD"
        assert err.seed == 5
        assert "migratory-counters/AD seed=5" in str(err)
        dump = err.diagnostic_dump()
        assert dump is not None and dump.reason == "livelock"
        json.dumps(err.dump)  # the wire form is pure JSON


def test_run_many_empty_and_serial_fallback():
    assert run_many([], workers=8) == []
    [only] = run_many([tiny_specs()[0]], workers=8)  # single spec runs inline
    assert only.ok


def test_run_pairs_rejects_odd_batch():
    with pytest.raises(ValueError, match="even"):
        run_pairs(tiny_specs()[:3])


def test_compare_protocols_workers_matches_serial():
    serial = compare_protocols("migratory-counters", iterations=6)
    fanned = compare_protocols("migratory-counters", iterations=6, workers=2)
    assert result_fingerprint(serial.wi) == result_fingerprint(fanned.wi)
    assert result_fingerprint(serial.ad) == result_fingerprint(fanned.ad)


def _empty_result(execution_time=0):
    return RunResult(
        execution_time=execution_time,
        breakdowns=[],
        counters=Counters(),
        network_bits=0,
        network_messages=0,
        bits_by_kind={},
        count_by_kind={},
        events_processed=0,
        policy_name="W-I",
        consistency_name="SC",
    )


def test_execution_time_ratio_nan_for_empty_runs():
    empty_both = ProtocolComparison(
        workload="x", wi=_empty_result(), ad=_empty_result()
    )
    assert math.isnan(empty_both.execution_time_ratio)
    empty_ad = ProtocolComparison(
        workload="x", wi=_empty_result(100), ad=_empty_result()
    )
    assert math.isnan(empty_ad.execution_time_ratio)
    real = ProtocolComparison(
        workload="x", wi=_empty_result(150), ad=_empty_result(100)
    )
    assert real.execution_time_ratio == pytest.approx(1.5)


def test_bench_suite_snapshot_and_diff(tmp_path):
    doc = run_bench_suite(preset="tiny", workers=2)
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["parallel_matches_serial"] is True
    assert doc["speedup"] is not None and doc["speedup"] > 0
    assert len(doc["runs"]) == len(figure5_suite("tiny")) == 8
    for run in doc["runs"]:
        assert run["events_processed"] > 0
        assert run["execution_time"] > 0
        assert run["counters"]

    target = write_bench(doc, tmp_path / "BENCH_test.json")
    loaded = load_bench(target)
    assert loaded == json.loads(json.dumps(doc))  # round-trips as JSON

    text = render_bench(doc)
    assert "speedup" in text and "mp3d/AD" in text
    diff = diff_bench(loaded, doc)
    assert "total serial wall" in diff


def test_load_bench_rejects_unknown_schema(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "other/9"}))
    with pytest.raises(ValueError, match="schema"):
        load_bench(bogus)


def test_bench_serial_only_snapshot_on_single_worker():
    """workers=1 (what a 1-CPU host resolves to) skips the parallel pass
    and records an honest serial-only snapshot instead of pool noise."""
    doc = run_bench_suite(workers=1, specs=tiny_specs()[:2])
    assert doc["workers"] == 1
    assert doc["parallel_wall_time_s"] is None
    assert doc["speedup"] is None
    assert doc["parallel_matches_serial"] is None
    assert "parallel_skipped" in doc
    assert "skipped" in render_bench(doc)


def test_freeze_value_round_trips_and_ignores_insertion_order():
    nested = {"outer": {"b": [1, 2], "a": {3, 1}}, "plain": 5}
    permuted = {"plain": 5, "outer": {"a": {1, 3}, "b": [1, 2]}}
    assert freeze_value(nested) == freeze_value(permuted)
    hash(freeze_value(nested))  # the whole point: frozen form is hashable
    thawed = thaw_value(freeze_value(nested))
    assert thawed == {"outer": {"b": (1, 2), "a": {3, 1}}, "plain": 5}


def test_runspec_with_dict_overrides_stays_hashable():
    spec = RunSpec.make(
        "migratory-counters", ProtocolPolicy.adaptive_default(),
        knobs={"beta": 2, "alpha": 1}, order=[3, 1], iterations=6,
    )
    hash(spec)  # must not raise (the RunSpec hashability contract)
    assert spec.override_kwargs() == {
        "knobs": {"beta": 2, "alpha": 1}, "order": (3, 1), "iterations": 6,
    }


def test_default_chunksize():
    assert parallel._default_chunksize(1, 4) == 1
    assert parallel._default_chunksize(8, 2) == 1
    assert parallel._default_chunksize(64, 2) == 8
    assert parallel._default_chunksize(1000, 4) == 62


def test_pool_reused_across_run_many_calls():
    """The sweep-phase pattern — many same-width run_many calls — must
    reuse one pool instead of forking a fresh one per call."""
    shutdown_pool()
    try:
        run_many(tiny_specs()[:2], workers=2)
        first = parallel._POOL
        assert first is not None
        run_many(tiny_specs()[2:], workers=2)
        assert parallel._POOL is first  # same width -> same pool
        run_many(tiny_specs()[:2], workers=3)
        assert parallel._POOL is not first  # width change -> rebuilt
    finally:
        shutdown_pool()
    assert parallel._POOL is None
