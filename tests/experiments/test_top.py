"""``repro-sim top``: pure-renderer tests plus one live round-trip."""

from repro.obs.metrics import MetricsRegistry
from repro.serve.top import _bar, render_dashboard


def _stats():
    return {
        "workers": 4,
        "cells_by_status": {"running": 2, "queued": 3, "done": 5, "failed": 1},
        "cache": {"hit_rate": 0.5, "hits": 5, "misses": 5, "entries": 10},
        "scheduler": {
            "requeues": 1, "timeouts": 0, "worker_crashes": 1,
            "executor_rebuilds": 1, "fault_kills": 2,
        },
    }


def _metrics_text():
    registry = MetricsRegistry()
    http = registry.counter("repro_http_requests_total", "", labelnames=("method", "route"))
    http.labels("GET", "/stats").inc(40)
    http.labels("POST", "/jobs").inc(2)
    registry.counter("repro_http_errors_total", "", labelnames=("route",)).labels("/jobs").inc()
    seconds = registry.histogram("repro_http_request_seconds", "", buckets=(0.1, 1.0))
    seconds.observe(0.05)
    seconds.observe(0.15)
    cell = registry.histogram("repro_serve_cell_seconds", "", buckets=(1.0, 10.0))
    cell.observe(2.0)
    cell.observe(4.0)
    return registry.exposition()


def test_bar_clamps_and_scales():
    assert _bar(0.0, 4) == "[....]"
    assert _bar(0.5, 4) == "[##..]"
    assert _bar(1.0, 4) == "[####]"
    assert _bar(7.5, 4) == "[####]"
    assert _bar(-1.0, 4) == "[....]"


def test_render_dashboard_stats_only():
    frame = render_dashboard(_stats(), url="http://h:8077")
    assert "repro-sim top — http://h:8077" in frame
    assert "2/4 busy" in frame
    assert "queue     3 waiting" in frame
    assert "queued=3" in frame and "failed=1" in frame
    assert "50% hit rate" in frame
    assert "kills 2" in frame
    assert "http" not in frame.splitlines()[-1]  # no metrics: no http line


def test_render_dashboard_with_metrics_and_jobs():
    jobs = [
        {"job": "job-1", "total": 4, "finished": 4, "complete": True,
         "cancelled": False, "cid": "sweep-abc"},
        {"job": "job-2", "total": 10, "finished": 5, "complete": False,
         "cancelled": False},
    ]
    frame = render_dashboard(_stats(), _metrics_text(), jobs=jobs)
    assert "http      42 requests, mean 100.0 ms, errors 1" in frame
    assert "attempts  2 executed, mean cell 3.00 s" in frame
    assert "jobs      (2 total, last 2)" in frame
    assert "4/4 done" in frame
    assert "cid=sweep-abc" in frame
    assert "5/10" in frame


def test_render_dashboard_tolerates_empty_documents():
    frame = render_dashboard({})
    assert frame.startswith("repro-sim top")
    assert "none yet" in frame


def test_fetch_frame_against_live_daemon(tmp_path):
    from repro.experiments.store import ResultStore
    from repro.serve.top import fetch_frame
    from tests.experiments.test_serve import running_server

    registry = MetricsRegistry()
    store = ResultStore(tmp_path / "cache", metrics_registry=registry)
    with running_server(store, registry=registry) as srv:
        frame = fetch_frame(f"http://127.0.0.1:{srv.port}")
    assert "workers" in frame
    assert "cache" in frame
    assert "http" in frame  # /metrics scrape succeeded and parsed
