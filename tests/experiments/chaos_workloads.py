"""Misbehaving workloads for resilience tests, registered on import.

Each factory goes into ``repro.workloads.WORKLOADS`` under a ``test-``
name; pool workers are forked *after* the pool is (re)built, so a test
that calls ``shutdown_pool()`` first gets workers that inherit these
registrations.  The misbehavior is driven by filesystem markers (shared
between parent and workers), keeping every workload deterministic:

* ``test-crash-once``   — ``os._exit(1)`` the first time its marker is
  absent, then behaves as tiny MigratoryCounters.
* ``test-crash-always`` — ``os._exit(1)`` every time.
* ``test-hang``         — sleeps ``seconds`` before building the
  workload (simulates a wedged simulation).
* ``test-interrupt-once`` — raises KeyboardInterrupt the first time its
  marker is absent (simulates Ctrl-C mid-sweep), then behaves normally.
"""

import os
import time
from pathlib import Path

from repro.workloads import WORKLOADS
from repro.workloads.synthetic import MigratoryCounters


def _normal(num_processors, seed, kwargs):
    kwargs.pop("marker", None)
    kwargs.pop("seconds", None)
    kwargs.setdefault("iterations", 4)
    return MigratoryCounters(num_processors, seed=seed, **kwargs)


def _crash_once(num_processors, *, marker, seed=42, **kwargs):
    path = Path(marker)
    if not path.exists():
        path.write_text("crashed")
        os._exit(1)
    return _normal(num_processors, seed, kwargs)


def _crash_always(num_processors, *, seed=42, **kwargs):
    os._exit(1)


def _hang(num_processors, *, seconds=30.0, seed=42, **kwargs):
    time.sleep(seconds)
    return _normal(num_processors, seed, kwargs)


def _interrupt_once(num_processors, *, marker, seed=42, **kwargs):
    path = Path(marker)
    if not path.exists():
        path.write_text("interrupted")
        raise KeyboardInterrupt
    return _normal(num_processors, seed, kwargs)


WORKLOADS.setdefault("test-crash-once", _crash_once)
WORKLOADS.setdefault("test-crash-always", _crash_always)
WORKLOADS.setdefault("test-hang", _hang)
WORKLOADS.setdefault("test-interrupt-once", _interrupt_once)
