"""Crash recovery in the parallel runner: timeouts, dead workers, retry.

The misbehaving workloads come from ``chaos_workloads`` (registered into
the live registry at import); every test rebuilds the shared pool first
so forked workers inherit those registrations.  The core contract under
test: a worker crash never loses completed work or determinism — after
pool rebuild and bounded retries, surviving results are byte-identical
to a serial run.
"""

import pytest

import tests.experiments.chaos_workloads  # noqa: F401 - registers test workloads

import repro.experiments.parallel as parallel
from repro.core.policy import ProtocolPolicy
from repro.experiments.parallel import (
    CELL_TIMEOUT,
    WORKER_CRASH,
    RunSpec,
    backoff_delay,
    result_fingerprint,
    run_many,
    shutdown_pool,
)


@pytest.fixture(autouse=True)
def fresh_pool():
    """Workers must fork after chaos_workloads registered its factories."""
    shutdown_pool()
    yield
    shutdown_pool()


def _mig_spec(seed, **overrides):
    return RunSpec.make(
        "migratory-counters", ProtocolPolicy.adaptive_default(),
        preset="tiny", iterations=4, seed=seed, **overrides,
    )


def test_backoff_delay_deterministic_capped_and_jittered():
    assert backoff_delay(0) == 0.0
    assert backoff_delay(1, key="a") == backoff_delay(1, key="a")
    assert backoff_delay(1, key="a") != backoff_delay(1, key="b")
    # Exponential base growth under a hard cap, jitter in [0.5, 1.0).
    for attempt in range(1, 12):
        delay = backoff_delay(attempt, base=0.05, cap=2.0, key="x")
        ceiling = min(2.0, 0.05 * 2 ** (attempt - 1))
        assert 0.5 * ceiling <= delay <= ceiling
    assert backoff_delay(50, cap=2.0) <= 2.0


def test_worker_crash_recovers_and_matches_serial(tmp_path):
    """A worker that dies mid-batch (BrokenProcessPool) triggers pool
    rebuild + re-submission, and the final results are byte-identical to
    a crash-free serial run."""
    crash = RunSpec.make(
        "test-crash-once", ProtocolPolicy.adaptive_default(),
        preset="tiny", marker=str(tmp_path / "crash.marker"), seed=7,
    )
    specs = [crash, _mig_spec(1), _mig_spec(2)]
    outcomes = run_many(specs, workers=2)
    assert all(o.ok for o in outcomes), [str(o.error) for o in outcomes if not o.ok]
    assert (tmp_path / "crash.marker").exists()  # the crash really happened

    # Serial baseline: same specs, marker pre-created so nothing crashes.
    baseline_marker = tmp_path / "baseline.marker"
    baseline_marker.write_text("armed")
    baseline = RunSpec.make(
        "test-crash-once", ProtocolPolicy.adaptive_default(),
        preset="tiny", marker=str(baseline_marker), seed=7,
    )
    serial = run_many([baseline, _mig_spec(1), _mig_spec(2)], workers=1)
    for recovered, reference in zip(outcomes, serial):
        assert result_fingerprint(recovered.unwrap()) == result_fingerprint(
            reference.unwrap()
        )


def test_externally_killed_worker_does_not_poison_next_call():
    """Satellite: a broken executor must never be handed to the next
    same-width run_many call — discard and rebuild on any failure."""
    specs = [_mig_spec(1), _mig_spec(2)]
    first = run_many(specs, workers=2)
    assert all(o.ok for o in first)
    pool = parallel._POOL
    assert pool is not None
    # Kill a live worker out from under the cached pool (OOM-killer sim).
    victim = next(iter(pool._processes.values()))
    victim.kill()
    victim.join()
    again = run_many(specs, workers=2)
    assert all(o.ok for o in again)
    assert parallel._POOL is not pool  # poisoned pool was discarded
    for a, b in zip(first, again):
        assert result_fingerprint(a.unwrap()) == result_fingerprint(b.unwrap())


def test_cell_timeout_yields_structured_error_not_hang():
    hang = RunSpec.make(
        "test-hang", ProtocolPolicy.adaptive_default(),
        preset="tiny", seconds=30.0, seed=3,
    )
    specs = [hang, _mig_spec(1), _mig_spec(2)]
    outcomes = run_many(specs, workers=2, timeout=1.0)
    assert not outcomes[0].ok
    assert outcomes[0].error.exc_type == CELL_TIMEOUT
    assert "1.0s per-cell" in outcomes[0].error.message
    assert outcomes[1].ok and outcomes[2].ok
    # The pool was rebuilt (stuck worker reclaimed); next call is healthy.
    healthy = run_many([_mig_spec(4)], workers=2)
    assert healthy[0].ok


def test_worker_crash_exhausts_attempts_with_accounting():
    crash = RunSpec.make(
        "test-crash-always", ProtocolPolicy.adaptive_default(),
        preset="tiny", seed=1,
    )
    outcomes = run_many([crash, RunSpec.make(
        "test-crash-always", ProtocolPolicy.write_invalidate(),
        preset="tiny", seed=1,
    )], workers=2, max_attempts=2)
    for outcome in outcomes:
        assert not outcome.ok
        assert outcome.error.exc_type == WORKER_CRASH
        assert outcome.error.attempts == 2
        assert "died 2 time(s)" in outcome.error.message
    # The shared pool is usable again afterwards.
    assert run_many([_mig_spec(9)], workers=2)[0].ok
