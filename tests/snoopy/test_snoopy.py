"""Tests of the bus-based snoopy variant (paper Section 6)."""

import pytest

from repro.core.policy import ProtocolPolicy
from repro.cpu.ops import Barrier, Compute, Lock, Read, Unlock, Write
from repro.memory.cache import CacheState
from repro.snoopy import BusOp, BusTiming, SnoopyConfig, SnoopyMachine, transaction_bits


def idle():
    return iter(())


def machine(adaptive=False, procs=4, **overrides):
    policy = (
        ProtocolPolicy.adaptive_default()
        if adaptive
        else ProtocolPolicy.write_invalidate()
    )
    if "policy" in overrides:
        policy = overrides.pop("policy")
    return SnoopyMachine(
        SnoopyConfig(num_processors=procs, policy=policy, **overrides)
    )


def seq(m, *steps):
    """Ordered per-step ops via barriers (same helper style as directory tests)."""
    n = m.config.num_processors
    programs = {p: [] for p in range(n)}
    for index, (node, op) in enumerate(steps):
        for p in range(n):
            if p == node:
                programs[p].append(op)
            programs[p].append(Barrier(index))
    return m.run([iter(programs[p]) for p in range(n)])


def test_bus_timing_durations():
    t = BusTiming()
    assert t.duration(BusOp.UPGR, False) == 4
    assert t.duration(BusOp.RD, False) == 4 + 12
    assert t.duration(BusOp.RD, True) == 4 + 6
    assert t.duration(BusOp.WB, True) == 4 + 6


def test_transaction_bits():
    assert transaction_bits(BusOp.UPGR) == 40
    assert transaction_bits(BusOp.RD) == 168
    assert transaction_bits(BusOp.WB) == 168


def test_read_then_hit():
    m = machine()
    result = seq(m, (0, Read(0)), (0, Read(0)))
    assert result.counter("read_misses") == 1
    assert result.counter("read_hits") == 1
    assert result.bus_transactions == 1


def test_write_invalidates_sharers_on_bus():
    m = machine()
    result = seq(m, (0, Read(0)), (1, Read(0)), (2, Write(0)))
    assert result.counter("invalidations_sent") == 2
    assert m.caches[0].cache.lookup(0) is None
    assert m.caches[1].cache.lookup(0) is None
    assert m.caches[2].cache.lookup(0).state is CacheState.DIRTY


def test_dirty_snoop_supplies_and_downgrades():
    m = machine()
    seq(m, (0, Write(0)), (1, Read(0)))
    assert m.caches[0].cache.lookup(0).state is CacheState.SHARED
    assert m.caches[1].cache.lookup(0).state is CacheState.SHARED


def test_migratory_nomination_on_bus():
    m = machine(adaptive=True)
    result = seq(
        m, (0, Read(0)), (0, Write(0)), (1, Read(0)), (1, Write(0)), (2, Read(0))
    )
    assert result.counter("nominations") == 1
    assert result.counter("migratory_reads") == 1
    assert m.caches[2].cache.lookup(0).state is CacheState.MIGRATING
    assert m.caches[1].cache.lookup(0) is None


def test_migratory_write_hits_locally_on_bus():
    m = machine(adaptive=True)
    result = seq(
        m,
        (0, Read(0)), (0, Write(0)),
        (1, Read(0)), (1, Write(0)),
        (2, Read(0)), (2, Write(0)),
    )
    assert result.counter("migrating_promotions") == 1
    # Only the two pre-nomination upgrades reached the bus as rx requests.
    assert result.counter("rxq_received") == 2


def test_nomig_reverts_on_bus():
    m = machine(adaptive=True)
    result = seq(
        m,
        (0, Read(0)), (0, Write(0)),
        (1, Read(0)), (1, Write(0)),
        (2, Read(0)),
        (3, Read(0)),
    )
    assert result.counter("nomig_reverts") == 1
    assert m.caches[2].cache.lookup(0).state is CacheState.SHARED
    assert m.caches[3].cache.lookup(0).state is CacheState.SHARED


def test_producer_consumer_not_nominated_on_bus():
    m = machine(adaptive=True)
    result = seq(
        m,
        (0, Write(0)), (1, Read(0)),
        (0, Write(0)), (1, Read(0)),
        (0, Write(0)),
    )
    assert result.counter("nominations") == 0


def test_locked_counter_coherent_on_bus():
    for adaptive in (False, True):
        m = machine(adaptive=adaptive, procs=8)

        def incrementer():
            for _ in range(6):
                yield Lock(0)
                yield Read(4096)
                yield Write(4096)
                yield Unlock(0)
                yield Compute(3)

        m.run([incrementer() for _ in range(8)])
        assert m.checker.latest[4096 // 16] == 48


def test_adaptive_reduces_bus_traffic():
    """The Section 6 claim: on a bus, AD's payoff is traffic reduction."""
    results = {}
    for adaptive in (False, True):
        m = machine(adaptive=adaptive, procs=8)

        def incrementer():
            for _ in range(12):
                yield Lock(0)
                yield Read(4096)
                yield Write(4096)
                yield Unlock(0)

        results[adaptive] = m.run([incrementer() for _ in range(8)])
    wi, ad = results[False], results[True]
    # Per migratory episode the bus saves the whole upgrade transaction:
    # ~19% of the bits (208 -> 168) and ~29% of the occupancy (14 -> 10
    # pclocks), and half the transactions.
    assert ad.bus_bits < wi.bus_bits * 0.9
    assert ad.bus_transactions < wi.bus_transactions * 0.6
    wi_busy = wi.bus_utilization * wi.execution_time
    ad_busy = ad.bus_utilization * ad.execution_time
    assert ad_busy < wi_busy * 0.85
    assert ad.execution_time <= wi.execution_time


def test_eviction_writes_back_on_bus():
    m = machine(procs=2, cache_size=256)  # 16 frames

    def writer():
        for i in range(32):
            yield Write(i * 16)
        yield Read(0)

    result = m.run([writer(), idle()])
    assert result.counter("writebacks") >= 16
    assert m.checker.latest  # versions recorded


def test_wrong_program_count_rejected():
    m = machine(procs=4)
    with pytest.raises(ValueError):
        m.run([idle()])


# ----------------------------------------------------------------------
# Write-update baseline (Dragon style)
# ----------------------------------------------------------------------
def update_machine(procs=4, **overrides):
    return SnoopyMachine(
        SnoopyConfig(num_processors=procs, protocol="update", **overrides)
    )


def test_update_write_patches_sharers_in_place():
    m = update_machine()
    result = seq(m, (0, Read(0)), (1, Read(0)), (2, Write(0)))
    # Nobody is invalidated under write-update.
    for node in (0, 1, 2):
        line = m.caches[node].cache.lookup(0)
        assert line is not None
        assert line.version == 1
    assert result.counter("updates_broadcast") == 1
    assert result.counter("copies_updated") == 2


def test_update_sole_writer_goes_dirty_and_writes_locally():
    m = update_machine()
    result = seq(m, (0, Write(0)), (0, Write(0)), (0, Write(0)))
    assert m.caches[0].cache.lookup(0).state is CacheState.DIRTY
    assert result.counter("updates_broadcast") == 1  # only the first write
    assert result.counter("write_hits") == 2
    assert m.checker.latest[0] == 3


def test_update_reader_downgrades_dirty_writer():
    m = update_machine()
    seq(m, (0, Write(0)), (1, Read(0)), (0, Write(0)))
    # After the read, node 0's writes broadcast again.
    assert m.caches[1].cache.lookup(0).version == 2
    assert m.checker.latest[0] == 2


def test_update_coherent_under_locked_increments():
    m = update_machine(procs=8)

    def incrementer():
        for _ in range(6):
            yield Lock(0)
            yield Read(4096)
            yield Write(4096)
            yield Unlock(0)

    m.run([incrementer() for _ in range(8)])
    assert m.checker.latest[4096 // 16] == 48


def test_migratory_sharing_is_write_updates_worst_case():
    """The motivation for the paper's choice of a write-invalidate base:
    under migratory sharing, write-update broadcasts every critical-
    section write to sharers who will never read their copies, while the
    adaptive invalidate protocol does the whole episode with one bus
    transaction."""
    def incrementer():
        for _ in range(12):
            yield Lock(0)
            yield Read(4096)
            yield Write(4096)
            yield Unlock(0)

    results = {}
    for name, cfg in (
        ("update", SnoopyConfig(num_processors=8, protocol="update")),
        ("wi", SnoopyConfig(num_processors=8)),
        ("ad", SnoopyConfig(num_processors=8,
                            policy=ProtocolPolicy.adaptive_default())),
    ):
        m = SnoopyMachine(cfg)
        results[name] = m.run([incrementer() for _ in range(8)])
    # Update keeps every processor's copy alive: every CS write is a
    # broadcast, so it never stops paying the bus.
    assert results["update"].counter("updates_broadcast") >= 90
    # Adaptive invalidate is the cheapest of the three on bus occupancy.
    def busy(r):
        return r.bus_utilization * r.execution_time
    assert busy(results["ad"]) < busy(results["wi"])
    assert busy(results["ad"]) < busy(results["update"])
