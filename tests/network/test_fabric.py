"""Tests for the two-mesh fabric."""

import pytest

from repro.network import Fabric, NetworkMessage, REPLY, REQUEST
from repro.sim import SimulationError, Simulator


def make_fabric(**kwargs):
    sim = Simulator()
    return sim, Fabric(sim, 2, 2, **kwargs)


def test_register_and_deliver():
    sim, fabric = make_fabric()
    got = []
    for node in range(4):
        fabric.register(node, lambda msg, node=node: got.append((node, msg.uid)))
    msg = NetworkMessage(src=0, dst=3, bits=40)
    fabric.send(msg, REQUEST)
    sim.run()
    assert got == [(3, msg.uid)]


def test_duplicate_registration_rejected():
    sim, fabric = make_fabric()
    fabric.register(0, lambda m: None)
    with pytest.raises(SimulationError):
        fabric.register(0, lambda m: None)


def test_unregistered_destination_rejected():
    sim, fabric = make_fabric()
    with pytest.raises(SimulationError):
        fabric.send(NetworkMessage(src=0, dst=1, bits=40), REQUEST)


def test_networks_are_independent_resources():
    sim, fabric = make_fabric()
    arrivals = {}
    for node in range(4):
        fabric.register(node, lambda m: arrivals.setdefault(m.uid, sim.now))
    a = NetworkMessage(src=0, dst=1, bits=168)
    b = NetworkMessage(src=0, dst=1, bits=168)
    fabric.send(a, REQUEST)
    fabric.send(b, REPLY)  # rides the other mesh: no queueing behind a
    sim.run()
    assert arrivals[a.uid] == arrivals[b.uid]


def test_unknown_network_rejected():
    sim, fabric = make_fabric()
    fabric.register(1, lambda m: None)
    with pytest.raises(ValueError):
        fabric.send(NetworkMessage(src=0, dst=1, bits=40), "sideband")


def test_aggregate_statistics():
    sim, fabric = make_fabric()
    for node in range(4):
        fabric.register(node, lambda m: None)
    fabric.send(NetworkMessage(src=0, dst=1, bits=40), REQUEST)
    fabric.send(NetworkMessage(src=1, dst=0, bits=168), REPLY)
    sim.run()
    assert fabric.messages_sent == 2
    assert fabric.bits_sent == 208
    fabric.reset_stats()
    assert fabric.messages_sent == 0


def test_unloaded_latency_delegates_per_network():
    _, fabric = make_fabric()
    assert fabric.unloaded_latency(0, 3, 40, REQUEST) == fabric.unloaded_latency(
        0, 3, 40, REPLY
    )
    assert fabric.unloaded_latency(0, 0, 40) < fabric.unloaded_latency(0, 3, 40)
