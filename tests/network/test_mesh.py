"""Unit tests for the wormhole mesh model."""

import pytest

from repro.network import NetworkMessage
from repro.network.mesh import Mesh
from repro.sim import Simulator


def make_mesh(**kwargs):
    sim = Simulator()
    mesh = Mesh(sim, 4, 4, **kwargs)
    return sim, mesh


def test_coords_roundtrip():
    _, mesh = make_mesh()
    for node in range(16):
        x, y = mesh.coords(node)
        assert mesh.node_at(x, y) == node


def test_xy_route_goes_x_first():
    _, mesh = make_mesh()
    # node 0 = (0,0), node 15 = (3,3)
    path = mesh.route(0, 15)
    assert path == [(0, 1), (1, 2), (2, 3), (3, 7), (7, 11), (11, 15)]


def test_route_to_self_is_empty():
    _, mesh = make_mesh()
    assert mesh.route(5, 5) == []


def test_hop_count_is_manhattan():
    _, mesh = make_mesh()
    assert mesh.hop_count(0, 15) == 6
    assert mesh.hop_count(0, 1) == 1
    assert mesh.hop_count(5, 5) == 0


def test_mean_distance_4x4():
    _, mesh = make_mesh()
    # The paper (Section 4.2) quotes an average distance of 2.67 links
    # between two arbitrary distinct nodes of a 4x4 mesh: 8/3 exactly.
    assert mesh.mean_distance() == pytest.approx(8 / 3)


def test_unloaded_latency_formula():
    # interface_delay is paid per end: injection + ejection.
    _, mesh = make_mesh(fall_through=3, interface_delay=2)
    # 40-bit message -> ceil(40/16) = 3 flits; 1 hop.
    assert mesh.unloaded_latency(0, 1, 40) == 1 * 3 + 3 + 2 * 2
    # 168-bit message -> ceil(168/16) = 11 flits; 6 hops.
    assert mesh.unloaded_latency(0, 15, 168) == 6 * 3 + 11 + 2 * 2
    # The machine default (1 per end) reproduces the paper's 2-pclock total.
    _, default_mesh = make_mesh(fall_through=3)
    assert default_mesh.unloaded_latency(0, 1, 40) == 1 * 3 + 3 + 2


def test_delivery_time_matches_unloaded_latency():
    sim, mesh = make_mesh()
    msg = NetworkMessage(src=0, dst=15, bits=168)
    arrival = []
    mesh.send(msg, lambda m: arrival.append(sim.now))
    sim.run()
    assert arrival == [mesh.unloaded_latency(0, 15, 168)]


def test_self_message_pays_interface_only():
    # No mesh traversal, but both interface crossings (inject + eject).
    sim, mesh = make_mesh(interface_delay=2)
    arrival = []
    mesh.send(NetworkMessage(src=3, dst=3, bits=168), lambda m: arrival.append(sim.now))
    sim.run()
    assert arrival == [4]
    assert mesh.unloaded_latency(3, 3, 168) == 4


def test_route_cache_returns_same_path():
    _, mesh = make_mesh()
    first = mesh.route(0, 15)
    assert mesh.route(0, 15) is first  # cached, not recomputed
    assert first == [(0, 1), (1, 2), (2, 3), (3, 7), (7, 11), (11, 15)]
    with pytest.raises(ValueError):
        mesh.route(0, 99)  # invalid pairs are still rejected, not cached


def test_contention_delays_second_message():
    sim, mesh = make_mesh()
    arrivals = {}
    # Two messages over the same single link 0->1 at the same time: the
    # second one queues behind the first's flits.
    a = NetworkMessage(src=0, dst=1, bits=168)  # 11 flits
    b = NetworkMessage(src=0, dst=1, bits=168)
    mesh.send(a, lambda m: arrivals.setdefault("a", sim.now))
    mesh.send(b, lambda m: arrivals.setdefault("b", sim.now))
    sim.run()
    assert arrivals["b"] == arrivals["a"] + 11  # one link occupancy apart


def test_disjoint_paths_do_not_interfere():
    sim, mesh = make_mesh()
    arrivals = {}
    a = NetworkMessage(src=0, dst=1, bits=168)
    b = NetworkMessage(src=8, dst=9, bits=168)
    mesh.send(a, lambda m: arrivals.setdefault("a", sim.now))
    mesh.send(b, lambda m: arrivals.setdefault("b", sim.now))
    sim.run()
    assert arrivals["a"] == arrivals["b"]


def test_infinite_bandwidth_mesh_has_no_queueing():
    sim, mesh = make_mesh(infinite_bandwidth=True)
    arrivals = []
    for _ in range(4):
        mesh.send(NetworkMessage(src=0, dst=1, bits=168), lambda m: arrivals.append(sim.now))
    sim.run()
    assert len(set(arrivals)) == 1


def test_traffic_statistics_accumulate():
    sim, mesh = make_mesh()
    mesh.send(NetworkMessage(src=0, dst=2, bits=40), lambda m: None)
    mesh.send(NetworkMessage(src=2, dst=0, bits=168), lambda m: None)
    sim.run()
    assert mesh.messages_sent == 2
    assert mesh.bits_sent == 208
    assert mesh.mean_latency() > 0


def test_bad_node_raises():
    _, mesh = make_mesh()
    with pytest.raises(ValueError):
        mesh.route(0, 99)


def test_message_flit_rounding():
    msg = NetworkMessage(src=0, dst=1, bits=40)
    assert msg.flits(16) == 3
    assert NetworkMessage(src=0, dst=1, bits=160).flits(16) == 10
    assert NetworkMessage(src=0, dst=1, bits=161).flits(16) == 11
