"""StallBreakdown edge cases: empty aggregation and zero totals."""

import pytest

from repro.stats.breakdown import StallBreakdown


def test_zero_total_fractions_are_all_zero():
    fractions = StallBreakdown().fractions()
    assert fractions == {"busy": 0.0, "sync": 0.0, "read": 0.0, "write": 0.0}


def test_fractions_sum_to_one():
    breakdown = StallBreakdown(busy=60, sync_stall=10, read_stall=20, write_stall=10)
    fractions = breakdown.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions["busy"] == pytest.approx(0.6)
    assert breakdown.total == 100


def test_aggregate_of_nothing_is_zero():
    result = StallBreakdown.aggregate([])
    assert result.total == 0
    assert result.fractions()["busy"] == 0.0


def test_aggregate_sums_components():
    parts = [
        StallBreakdown(busy=1, sync_stall=2, read_stall=3, write_stall=4),
        StallBreakdown(busy=10, sync_stall=20, read_stall=30, write_stall=40),
        StallBreakdown(),  # an idle processor contributes nothing
    ]
    total = StallBreakdown.aggregate(parts)
    assert (total.busy, total.sync_stall, total.read_stall, total.write_stall) == (
        11, 22, 33, 44,
    )
    assert total.total == 110
    # Aggregation must not mutate its inputs.
    assert parts[0].busy == 1 and parts[2].total == 0


def test_add_accumulates_in_place():
    acc = StallBreakdown(busy=5)
    acc.add(StallBreakdown(busy=1, read_stall=2))
    assert acc.busy == 6
    assert acc.read_stall == 2
