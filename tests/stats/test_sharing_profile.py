"""Unit tests of the invalidation-pattern profiler."""

from repro.stats.sharing_profile import (
    InvalidationProfile,
    invalidation_profile,
    render_profile,
)


def make_result(histogram):
    """A minimal RunResult stand-in exposing .counter()."""

    class FakeResult:
        def counter(self, name):
            if name.startswith("inval_dist_"):
                return histogram.get(int(name.rsplit("_", 1)[1]), 0)
            return 0

    return FakeResult()


def test_profile_extraction():
    profile = invalidation_profile(make_result({0: 10, 1: 80, 2: 10}))
    assert profile.total_requests == 100
    assert profile.single_invalidation_fraction == 0.8
    assert profile.zero_invalidation_fraction == 0.1
    assert profile.multiple_invalidation_fraction == 0.1


def test_empty_profile():
    profile = invalidation_profile(make_result({}))
    assert profile.total_requests == 0
    assert profile.single_invalidation_fraction == 0.0
    assert not profile.looks_migratory


def test_migratory_classification():
    assert InvalidationProfile({1: 90, 0: 10}).looks_migratory
    assert not InvalidationProfile({0: 90, 1: 10}).looks_migratory


def test_render_contains_fractions():
    text = render_profile("demo", InvalidationProfile({1: 3, 4: 1}))
    assert "demo" in text
    assert "4+" in text
    assert "75.0%" in text


def test_profile_from_real_run():
    from repro import Machine, MachineConfig
    from repro.cpu.ops import Barrier, Read, Write

    machine = Machine(MachineConfig.dash_default())

    def writer():
        yield Read(0)
        yield Write(0)
        yield Barrier(0)
        yield Barrier(1)

    def second():
        yield Barrier(0)
        yield Read(0)
        yield Write(0)  # displaces exactly one copy
        yield Barrier(1)

    def others():
        yield Barrier(0)
        yield Barrier(1)

    programs = [writer(), second()] + [others() for _ in range(14)]
    result = machine.run(programs)
    profile = invalidation_profile(result)
    assert profile.histogram.get(0, 0) == 1  # first write, uncached
    assert profile.histogram.get(1, 0) == 1  # second write, single inval
