"""Counters: slot-handle fast path vs the string-keyed report API."""

from repro.stats.counters import Counters


def test_inc_and_get_by_name():
    c = Counters()
    c.inc("read_hits")
    c.inc("read_hits", 4)
    assert c.get("read_hits") == 5
    assert c["read_hits"] == 5
    assert c.get("never_touched") == 0


def test_handle_inc_matches_string_inc():
    c = Counters()
    h = c.handle("writebacks")
    h.inc()
    c.inc("writebacks", 2)
    h.inc(3)
    assert c.get("writebacks") == 6
    assert h.value == 6


def test_handle_alone_does_not_materialize_entry():
    # Pre-resolving every hot counter at construction time must not make
    # untouched counters appear in reports (the old defaultdict only grew
    # entries on an actual inc).
    c = Counters()
    c.handle("naks")
    assert c.as_dict() == {}
    assert list(c.items()) == []


def test_zero_amount_inc_materializes_entry():
    # inc(name, 0) created an entry under the defaultdict; keep that.
    c = Counters()
    c.inc("invalidations_sent", 0)
    assert c.as_dict() == {"invalidations_sent": 0}


def test_clear_keeps_handles_valid():
    # Regression: clear() must zero slots in place, so handles resolved
    # before a stats reset neither crash nor resurrect stale counts.
    c = Counters()
    h = c.handle("read_misses")
    h.inc(7)
    c.clear()
    assert c.as_dict() == {}
    assert h.value == 0
    h.inc()
    assert c.as_dict() == {"read_misses": 1}
    assert c.get("read_misses") == 1


def test_clear_then_merge_cannot_resurrect_stale_counts():
    # The reset_stats flow: warmup counts are cleared, then later merges
    # bring in only post-clear values.
    c = Counters()
    h = c.handle("nominations")
    h.inc(100)  # warmup noise
    c.clear()
    other = Counters()
    other.inc("nominations", 3)
    c.merge(other)
    assert c.as_dict() == {"nominations": 3}
    assert h.value == 3


def test_merge_sums_and_creates():
    a = Counters()
    a.inc("x", 1)
    b = Counters()
    b.inc("x", 2)
    b.inc("y", 5)
    a.merge(b)
    assert a.as_dict() == {"x": 3, "y": 5}


def test_merge_ignores_untouched_handles_of_source():
    a = Counters()
    b = Counters()
    b.handle("phantom")  # resolved but never incremented
    b.inc("real", 1)
    a.merge(b)
    assert a.as_dict() == {"real": 1}


def test_items_sorted_by_name():
    c = Counters()
    c.inc("zeta")
    c.inc("alpha", 2)
    assert list(c.items()) == [("alpha", 2), ("zeta", 1)]


def test_handles_interchangeable_with_string_api_after_clear():
    c = Counters()
    h1 = c.handle("writebacks")
    c.inc("writebacks", 2)
    c.clear()
    h2 = c.handle("writebacks")  # re-resolve post-clear
    h1.inc()
    h2.inc()
    assert c.get("writebacks") == 2
