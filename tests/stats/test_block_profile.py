"""Tests of per-block sharing-pattern classification."""

import pytest

from repro import Machine, MachineConfig
from repro.cpu.ops import Barrier, Lock, Read, Unlock, Write
from repro.stats.block_profile import (
    ALL_CLASSES,
    MIGRATORY,
    PRIVATE,
    PRODUCER_CONSUMER,
    READ_ONLY,
    READ_WRITE_SHARED,
    BlockProfiler,
    BlockStats,
    classify_block,
)


def stats_from(events):
    stats = BlockStats()
    for kind, node, invals in events:
        if kind == "r":
            stats.record_read(node)
        else:
            stats.record_write(node, invals)
    return stats


def test_private_block():
    s = stats_from([("r", 0, 0), ("w", 0, 0), ("w", 0, 0)])
    assert classify_block(s) == PRIVATE


def test_read_only_block():
    s = stats_from([("w", 0, 0), ("r", 1, 0), ("r", 2, 0), ("r", 3, 0)])
    assert classify_block(s) == READ_ONLY


def test_producer_consumer_block():
    s = stats_from(
        [("w", 0, 0), ("r", 1, 0), ("w", 0, 1), ("r", 1, 0), ("w", 0, 1)]
    )
    assert classify_block(s) == PRODUCER_CONSUMER


def test_migratory_block():
    s = stats_from(
        [("r", 0, 0), ("w", 0, 0), ("r", 1, 0), ("w", 1, 1),
         ("r", 2, 0), ("w", 2, 1), ("r", 3, 0), ("w", 3, 1)]
    )
    assert classify_block(s) == MIGRATORY


def test_wide_shared_block():
    s = stats_from(
        [("r", 0, 0), ("r", 1, 0), ("r", 2, 0), ("w", 3, 3),
         ("r", 0, 0), ("r", 1, 0), ("w", 2, 2)]
    )
    assert classify_block(s) == READ_WRITE_SHARED


def test_profiler_census_totals():
    profiler = BlockProfiler()
    profiler.on_read(1, 0)
    profiler.on_write(1, 0, 0)
    profiler.on_write(2, 0, 0)
    profiler.on_read(2, 1)
    profiler.on_write(2, 0, 1)
    census = profiler.census()
    assert sum(census.values()) == 2
    assert set(census) == set(ALL_CLASSES)
    text = profiler.render()
    assert "migratory" in text


def test_machine_integration_classifies_patterns():
    machine = Machine(MachineConfig.dash_default(profile_blocks=True))
    counter = 8192        # lock-protected counter: migratory
    flag = 12288          # producer-consumer flag

    def worker(n):
        for round_ in range(4):
            yield Lock(0)
            yield Read(counter)
            yield Write(counter)
            yield Unlock(0)
            if n == 0:
                yield Write(flag)
            yield Barrier(round_)
            if n != 0:
                yield Read(flag)

    machine.run([worker(n) for n in range(16)])
    classes = machine.block_profiler.classify()
    assert classes[counter // 16] == MIGRATORY
    assert classes[flag // 16] == PRODUCER_CONSUMER


def test_profiling_disabled_by_default():
    machine = Machine(MachineConfig.dash_default())
    assert machine.block_profiler is None
