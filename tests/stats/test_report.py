"""Tests for the plain-text reporting helpers."""

import pytest

from repro.stats.report import format_table, percentage_bar, stacked_bar


def test_format_table_alignment():
    text = format_table(
        ("name", "value"),
        [("alpha", 1), ("a-much-longer-name", 123456)],
    )
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    # Columns align: 'value' data starts at the same offset everywhere.
    offset = lines[0].index("value")
    assert lines[2][offset:].strip() == "1"
    assert lines[3][offset:].strip() == "123456"


def test_format_table_empty_rows():
    text = format_table(("a", "b"), [])
    assert text.splitlines()[0].startswith("a")


def test_percentage_bar_bounds():
    assert percentage_bar(0.0, width=10) == "." * 10
    assert percentage_bar(1.0, width=10) == "#" * 10
    assert percentage_bar(0.5, width=10) == "#" * 5 + "." * 5
    # Clipping.
    assert percentage_bar(1.7, width=4) == "####"
    assert percentage_bar(-0.3, width=4) == "...."


def test_stacked_bar_composition():
    bar = stacked_bar({"busy": 0.25, "sync": 0.25, "read": 0.25, "write": 0.25},
                      width=8)
    assert bar == "bbssrrww"


def test_stacked_bar_shorter_when_time_saved():
    # An AD bar at 60% of the W-I baseline renders shorter.
    bar = stacked_bar({"busy": 0.3, "sync": 0.1, "read": 0.1, "write": 0.1},
                      width=10)
    assert len(bar) == 6
