"""Exhaustive model-checking of the MESI / Dragon / Hybrid protocols.

Same bounded model as test_model_checker, pointed at the three protocols
the pluggable framework added.  Exploration enumerates every message
interleaving, so these runs prove SWMR and — via the quiescent check —
the update protocols' no-stale-read property (every sharer of a drained
machine holds the latest committed version) over the full bounded space.
"""

import pytest

from repro.core.policy import ProtocolPolicy
from repro.verify import ProtocolModel, ProtocolViolation, explore
from repro.verify.model import D, DR, M, MD, MU, S, SR, State, U


def test_mesi_small_exploration_clean():
    result = explore(ProtocolModel(2, 2, ProtocolPolicy.mesi()))
    assert result.states_explored > 500
    assert result.final_states > 0
    # MESI never uses the migratory directory states...
    assert all(shape[0] in (U, SR, DR) for shape in result.state_shapes)
    # ...but does hand out clean-exclusive (M here models E) lines.
    assert any(M in shape[1] for shape in result.state_shapes)


def test_mesi_exclusive_only_under_dirty_remote():
    """A clean-exclusive copy only exists while the directory points at
    its owner (DR) — never under U/SR, where another cache could read
    stale data without the owner's knowledge."""
    result = explore(ProtocolModel(2, 2, ProtocolPolicy.mesi()))
    for dir_state, lines in result.state_shapes:
        if M in lines:
            assert dir_state == DR, (dir_state, lines)


def test_dragon_small_exploration_clean():
    result = explore(ProtocolModel(2, 2, ProtocolPolicy.dragon()))
    assert result.states_explored > 500
    assert result.final_states > 0
    # Write-update keeps sharers alive: both caches shared is reachable,
    # and the migratory machinery never engages.
    assert any(shape == (SR, (S, S)) for shape in result.state_shapes)
    assert all(shape[0] not in (MD, MU) for shape in result.state_shapes)


def test_hybrid_fallback_explores_clean():
    """threshold=1 forces the invalidate fallback into the explored
    space: the second unconsumed update takes the Rxq flow instead."""
    eager = explore(
        ProtocolModel(2, 2, ProtocolPolicy(protocol="hybrid", update_threshold=1))
    )
    pure = explore(ProtocolModel(2, 2, ProtocolPolicy.dragon()))
    assert eager.final_states > 0
    # The fallback prunes update interleavings, so the space shrinks —
    # evidence the threshold actually changed the transition relation.
    assert eager.states_explored < pure.states_explored
    # Falling back grants an exclusive copy, so Dirty lines show up in
    # shapes pure Dragon cannot reach with two active sharers.
    assert any(
        shape[0] == DR and D in shape[1] for shape in eager.state_shapes
    )


def test_hybrid_default_threshold_matches_dragon_at_small_bound():
    """Two ops per cache cannot accumulate 8 unconsumed updates, so the
    default hybrid must traverse exactly Dragon's state space."""
    hybrid = explore(ProtocolModel(2, 2, ProtocolPolicy.hybrid()))
    dragon = explore(ProtocolModel(2, 2, ProtocolPolicy.dragon()))
    assert hybrid.states_explored == dragon.states_explored
    assert hybrid.state_shapes == dragon.state_shapes


def test_stale_sharer_detected_at_quiescence():
    """The no-stale-read invariant has teeth: a drained SR state with a
    sharer below the latest version must be rejected."""
    from repro.verify.checker import _check_quiescent
    from repro.verify.model import CacheSt, HomeSt

    bad = State(
        home=HomeSt(dir=SR, sharers=frozenset({0, 1}), version=2),
        caches=(CacheSt(line=S, version=2), CacheSt(line=S, version=1)),
        latest=2,
    )
    with pytest.raises(ProtocolViolation, match="stale"):
        _check_quiescent(bad)


def test_mesi_three_caches_exploration_clean():
    result = explore(ProtocolModel(3, 2, ProtocolPolicy.mesi()))
    assert result.states_explored > 50_000
    assert result.final_states > 0
