"""Model-checker tests: exhaustive exploration + cross-validation.

These cover the protocol far beyond what timed simulation can sample:
every message interleaving of the bounded model is enumerated, and the
set of reachable protocol shapes is cross-checked against what the timed
machine actually visits.
"""

import pytest

from repro.core.policy import ProtocolPolicy
from repro.verify import ProtocolModel, ProtocolViolation, explore
from repro.verify.model import (
    D,
    DR,
    HOME,
    M,
    MD,
    MU,
    Msg,
    RXP,
    S,
    SR,
    State,
    U,
    pop,
    push,
)


def test_wi_small_exploration_clean():
    result = explore(ProtocolModel(2, 2, ProtocolPolicy.write_invalidate()))
    assert result.states_explored > 500
    assert result.final_states > 0
    # W-I never reaches migratory directory states.
    assert all(shape[0] in (U, SR, DR) for shape in result.state_shapes)
    # And never creates a Migrating cache line.
    assert all(M not in shape[1] for shape in result.state_shapes)


def test_ad_small_exploration_clean():
    result = explore(ProtocolModel(2, 2, ProtocolPolicy.adaptive_default()))
    shapes = result.state_shapes
    # The migratory states are actually reachable...
    assert any(shape[0] == MD for shape in shapes)
    assert any(M in shape[1] for shape in shapes)
    # ...and a Migrating line only exists under a migratory directory
    # state or transiently while home processes the handoff.
    for dir_state, lines in shapes:
        if lines.count(M) + lines.count(D) > 1:
            pytest.fail(f"two writable copies in shape {dir_state}/{lines}")


def test_ad_three_ops_reaches_migratory_uncached():
    """Nomination takes four operations; the eviction that produces
    Migratory-Uncached is the fifth, so it needs the 2-cache 3-op bound."""
    result = explore(ProtocolModel(2, 3, ProtocolPolicy.adaptive_default()))
    assert any(shape[0] == MU for shape in result.state_shapes)


def test_ad_three_caches_exploration_clean():
    result = explore(ProtocolModel(3, 2, ProtocolPolicy.adaptive_default()))
    assert result.states_explored > 50_000
    assert result.final_states > 0


@pytest.mark.parametrize(
    "policy",
    [
        ProtocolPolicy(adaptive=True, rxq_reverts_to_ordinary=True),
        ProtocolPolicy(adaptive=True, nomig_enabled=False),
    ],
    ids=["rxq-revert", "no-nomig"],
)
def test_policy_variants_explore_clean(policy):
    result = explore(ProtocolModel(2, 3, policy))
    assert result.final_states > 0


def test_channels_are_fifo():
    channels = ()
    a = Msg(RXP, HOME, 0, 0, version=1)
    b = Msg(RXP, HOME, 0, 0, version=2)
    channels = push(channels, a)
    channels = push(channels, b)
    key = (HOME, 0, "reply")
    first, channels = pop(channels, key)
    second, channels = pop(channels, key)
    assert first.version == 1
    assert second.version == 2
    assert channels == ()


def test_violation_detected_in_corrupted_state():
    """Planting two dirty copies must trip the single-writer check."""
    from repro.verify.checker import _check_state
    from repro.verify.model import CacheSt, HomeSt

    bad = State(
        home=HomeSt(dir=DR, owner=0),
        caches=(CacheSt(line=D, version=0), CacheSt(line=D, version=0)),
    )
    with pytest.raises(ProtocolViolation, match="multiple writable"):
        _check_state(bad)


def test_stale_owner_version_detected():
    from repro.verify.checker import _check_state
    from repro.verify.model import CacheSt, HomeSt

    bad = State(
        home=HomeSt(dir=DR, owner=0),
        caches=(CacheSt(line=D, version=1), CacheSt()),
        latest=2,
    )
    with pytest.raises(ProtocolViolation, match="version"):
        _check_state(bad)


def test_timed_simulation_shapes_subset_of_model():
    """Cross-validation: every (directory state, line states) combination
    the timed machine visits must be reachable in the abstract model.

    We sample final states of many small timed runs over ONE block and
    compare against the exhaustively computed shape set.
    """
    import random

    from repro import Machine, MachineConfig
    from repro.cpu.ops import Read, Write

    # The protocol shape set saturates at the 2-op bound (verified: the
    # 3-op exploration reaches the same 16 shapes), so the cheap bound
    # suffices as the reference.
    model_shapes = explore(
        ProtocolModel(3, 2, ProtocolPolicy.adaptive_default())
    ).state_shapes

    for seed in range(8):
        rng = random.Random(seed)
        config = MachineConfig(
            mesh_width=2,
            mesh_height=2,
            policy=ProtocolPolicy.adaptive_default(),
        )
        machine = Machine(config)

        def program(n, rng=rng):
            ops = []
            for _ in range(rng.randrange(4)):
                ops.append(Write(0) if rng.random() < 0.5 else Read(0))
            return iter(ops)

        machine.run([program(n) for n in range(4)])
        entry = machine.directories[0].entries.get(0)
        if entry is None:
            continue
        lines = []
        for cache in machine.caches[:3]:
            line = cache.cache.lookup(0)
            lines.append(line.state.value if line else "I")
        shape = (entry.state.value, tuple(sorted(lines)))
        assert shape in model_shapes, shape
