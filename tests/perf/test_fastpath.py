"""Fast-path plumbing: variant detection, forced-pure loading, and
cross-variant determinism.

The compiled (mypyc) fast path is opt-in infrastructure — these tests
must pass whether or not the extensions are installed.  The determinism
test runs the same tiny workload in a ``REPRO_FORCE_PURE=1`` subprocess
and compares the full result fingerprint against the in-process run:
whatever variant this process loaded, the pure-Python reference must
produce byte-identical results.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.coherence import messages
from repro.core.policy import ProtocolPolicy
from repro.experiments.runner import run_workload
from repro.fastpath import fast_path_variant, force_pure, load_impl
from repro.sim import engine

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

# One small script both subprocess tests share: run mp3d/AD tiny and
# print the deterministic result fingerprint as JSON.
FINGERPRINT_SCRIPT = """
import json, sys
from repro.core.policy import ProtocolPolicy
from repro.experiments.runner import run_workload

result = run_workload("mp3d", ProtocolPolicy.adaptive_default(), preset="tiny")
print(json.dumps({
    "execution_time": result.execution_time,
    "events_processed": result.events_processed,
    "network_bits": result.network_bits,
    "network_messages": result.network_messages,
    "counters": result.counters.as_dict(),
    "count_by_kind": result.count_by_kind,
}))
"""


def _run_fingerprint(extra_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-c", FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def test_variant_is_reported():
    assert fast_path_variant() in ("pure", "compiled", "mixed")
    assert isinstance(engine.FAST_PATH_COMPILED, bool)
    assert isinstance(messages.FAST_PATH_COMPILED, bool)


def test_load_impl_honors_force_pure(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PURE", "1")
    assert force_pure()
    module, compiled = load_impl("repro.sim._engine_impl")
    assert not compiled
    assert hasattr(module, "Simulator")
    monkeypatch.setenv("REPRO_FORCE_PURE", "0")
    assert not force_pure()


def test_pure_subprocess_matches_in_process():
    """REPRO_FORCE_PURE=1 produces the identical result fingerprint."""
    result = run_workload("mp3d", ProtocolPolicy.adaptive_default(), preset="tiny")
    here = {
        "execution_time": result.execution_time,
        "events_processed": result.events_processed,
        "network_bits": result.network_bits,
        "network_messages": result.network_messages,
        "counters": result.counters.as_dict(),
        "count_by_kind": result.count_by_kind,
    }
    pure = _run_fingerprint({"REPRO_FORCE_PURE": "1"})
    assert pure == here


def test_auto_subprocess_matches_forced_pure():
    """Whatever 'auto' loads in a fresh process equals the pure reference."""
    auto = _run_fingerprint({})
    pure = _run_fingerprint({"REPRO_FORCE_PURE": "1"})
    assert auto == pure
