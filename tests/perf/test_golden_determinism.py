"""Golden-run determinism: results must be bit-identical across versions.

``golden_tiny.json`` records every deterministic observable (execution
time, event count, traffic, all protocol counters, per-kind message
counts) of the MP3D and Cholesky tiny runs under W-I and AD, captured
before the event-core overhaul.  Any optimization of the simulator's hot
paths — queue layout, message pooling, counter storage — must reproduce
these numbers exactly; a mismatch means simulated *behaviour* changed,
not just speed.

Refreshing the goldens is a deliberate act (a protocol or timing-model
change): regenerate each entry with the spec below and explain the delta
in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.core.policy import ProtocolPolicy
from repro.experiments.parallel import RunSpec, execute_spec

GOLDEN_PATH = Path(__file__).parent / "golden_tiny.json"

POLICIES = {
    "W-I": ProtocolPolicy.write_invalidate(),
    "AD": ProtocolPolicy.adaptive_default(),
}


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("label", sorted(_golden()))
def test_golden_run_matches(label):
    want = _golden()[label]
    workload, policy_name = label.split("/")
    spec = RunSpec.make(
        workload, POLICIES[policy_name], preset="tiny", check_coherence=True
    )
    result = execute_spec(spec).unwrap()
    got = {
        "execution_time": result.execution_time,
        "events_processed": result.events_processed,
        "network_bits": result.network_bits,
        "network_messages": result.network_messages,
        "counters": result.counters.as_dict(),
        "count_by_kind": result.count_by_kind,
    }
    for key, expected in want.items():
        assert got[key] == expected, (
            f"{label}: {key} diverged from golden "
            f"(simulated behaviour changed, not just speed)"
        )
