"""Golden-run determinism: results must be bit-identical across versions.

``golden_tiny.json`` records every deterministic observable (execution
time, event count, traffic, all protocol counters, per-kind message
counts) of the MP3D and Cholesky tiny runs under the full protocol
family.  The W-I and AD entries were captured before the event-core
overhaul and have survived it and the protocol-framework refactor
unchanged; the MESI/Dragon/Hybrid entries pin the new protocols from
their first release.  Any optimization of the simulator's hot paths —
queue layout, message pooling, counter storage — must reproduce these
numbers exactly; a mismatch means simulated *behaviour* changed, not
just speed.

Refreshing the goldens is a deliberate act (a protocol or timing-model
change): regenerate each entry with the spec below and explain the delta
in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.core.policy import ProtocolPolicy
from repro.experiments.parallel import RunSpec, execute_spec

GOLDEN_PATH = Path(__file__).parent / "golden_tiny.json"

POLICIES = {
    "W-I": ProtocolPolicy.write_invalidate(),
    "AD": ProtocolPolicy.adaptive_default(),
    "MESI": ProtocolPolicy.mesi(),
    "Dragon": ProtocolPolicy.dragon(),
    "Hybrid": ProtocolPolicy.hybrid(),
}


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("label", sorted(_golden()))
def test_golden_run_matches(label):
    want = _golden()[label]
    workload, policy_name = label.split("/")
    spec = RunSpec.make(
        workload, POLICIES[policy_name], preset="tiny", check_coherence=True
    )
    result = execute_spec(spec).unwrap()
    got = {
        "execution_time": result.execution_time,
        "events_processed": result.events_processed,
        "network_bits": result.network_bits,
        "network_messages": result.network_messages,
        "counters": result.counters.as_dict(),
        "count_by_kind": result.count_by_kind,
    }
    for key, expected in want.items():
        assert got[key] == expected, (
            f"{label}: {key} diverged from golden "
            f"(simulated behaviour changed, not just speed)"
        )


@pytest.mark.parametrize("policy_name", ["MESI", "Dragon", "Hybrid"])
def test_new_protocols_deterministic_across_processes(policy_name):
    """A fresh interpreter reproduces the mp3d golden byte-for-byte.

    The golden file pins this process's results; running the same spec
    in a subprocess proves nothing about the numbers depends on
    accumulated interpreter state (hash seeds, import order, pools).
    """
    import os
    import subprocess
    import sys

    label = f"mp3d/{policy_name}"
    want = _golden()[label]
    script = (
        "import json\n"
        "from repro.protocols import policy_for\n"
        "from repro.experiments.parallel import RunSpec, execute_spec\n"
        f"spec = RunSpec.make('mp3d', policy_for({policy_name!r}),"
        " preset='tiny', check_coherence=True)\n"
        "result = execute_spec(spec).unwrap()\n"
        "print(json.dumps({\n"
        "    'execution_time': result.execution_time,\n"
        "    'events_processed': result.events_processed,\n"
        "    'network_bits': result.network_bits,\n"
        "    'network_messages': result.network_messages,\n"
        "    'counters': result.counters.as_dict(),\n"
        "    'count_by_kind': result.count_by_kind,\n"
        "}))\n"
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, check=True,
    )
    assert json.loads(proc.stdout) == want
