"""Unit tests for migratory detection — every sequence from the paper.

Section 3.3 gives the nomination condition and three sequences that must
NOT be nominated; Section 3.4 gives the NoMig revert and the Rxq
heuristic.  These tests drive the untimed reference FSM (Figure 4).
"""

import pytest

from repro.core.detection import (
    DetectorState,
    LastWriterTracker,
    ReferenceDetectorFSM,
    should_nominate,
)
from repro.core.policy import ProtocolPolicy


def adaptive_fsm(**kwargs):
    return ReferenceDetectorFSM(policy=ProtocolPolicy(adaptive=True, **kwargs))


# ----------------------------------------------------------------------
# The nomination predicate (Cond in Figure 4)
# ----------------------------------------------------------------------
def test_nominates_two_copies_different_writer():
    assert should_nominate(num_copies=2, requester=1, last_writer=0)


def test_rejects_same_writer():
    # Producer-consumer: Rxq_i Rr_j Rxq_i Rr_j must not be migratory.
    assert not should_nominate(num_copies=2, requester=0, last_writer=0)


def test_rejects_more_than_two_copies():
    assert not should_nominate(num_copies=3, requester=1, last_writer=0)


def test_rejects_one_copy():
    assert not should_nominate(num_copies=1, requester=1, last_writer=0)


def test_rejects_invalid_last_writer():
    assert not should_nominate(num_copies=2, requester=1, last_writer=None)


# ----------------------------------------------------------------------
# Last-writer pointer maintenance
# ----------------------------------------------------------------------
def test_lw_tracks_writes():
    lw = LastWriterTracker()
    assert lw.value is None
    lw.record_write(3)
    assert lw.value == 3


def test_lw_invalidated_when_sharers_exceed_two():
    lw = LastWriterTracker()
    lw.record_write(3)
    lw.note_sharer_count(2)
    assert lw.value == 3
    lw.note_sharer_count(3)
    assert lw.value is None


# ----------------------------------------------------------------------
# The canonical migratory sequence: Rr_i Rxq_i Rr_j Rxq_j ...
# ----------------------------------------------------------------------
def test_canonical_migratory_sequence_nominated():
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)       # LW=0, Dirty-Remote
    fsm.read_miss(1)            # Shared-Remote {0, 1}
    fsm.read_exclusive(1)       # N==2, LW=0 != 1 -> nominate
    assert fsm.is_migratory
    assert fsm.state is DetectorState.MIGRATORY_DIRTY
    assert fsm.owner == 1
    assert fsm.nominations == 1


def test_migratory_stays_migratory_across_processors():
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    # Subsequent read-modify-write episodes: owner migrates on each read.
    for node in (2, 3, 4):
        fsm.read_miss(node)
        assert fsm.owner == node
        fsm.write_hit_by_owner()  # local Migrating -> Dirty, no request
    assert fsm.is_migratory
    assert fsm.nominations == 1


def test_write_invalidate_policy_never_nominates():
    fsm = ReferenceDetectorFSM(policy=ProtocolPolicy.write_invalidate())
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    assert not fsm.is_migratory
    assert fsm.state is DetectorState.DIRTY_REMOTE


# ----------------------------------------------------------------------
# Paper's non-migratory sequences
# ----------------------------------------------------------------------
def test_intervening_reader_rejected():
    """Rxq_i Rr_j Rr_k Rxq_j: three copies at the Rxq -> not migratory."""
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_miss(2)            # sharers {0, 1, 2}: LW invalidated too
    fsm.read_exclusive(1)
    assert not fsm.is_migratory


def test_producer_consumer_rejected():
    """Rxq_i Rr_j Rxq_i Rr_j: LW == requester -> not migratory."""
    fsm = adaptive_fsm()
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(0)       # N==2 but LW==0 == requester
    assert not fsm.is_migratory
    fsm.read_miss(1)
    fsm.read_exclusive(0)
    assert not fsm.is_migratory


def test_silent_replacement_rejected():
    """Rr_i Rxq_i Rr_j Rr_k Repl_k Rxq_j: stale presence + invalid LW."""
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_miss(2)            # list grows to 3: LW valid bit reset
    fsm.replacement(2)          # silent: home still counts 3 copies
    fsm.read_exclusive(1)
    assert not fsm.is_migratory
    assert len(fsm.sharers) == 0  # moved to Dirty-Remote
    assert fsm.state is DetectorState.DIRTY_REMOTE


# ----------------------------------------------------------------------
# Migratory-Uncached: nomination survives replacement
# ----------------------------------------------------------------------
def test_replacement_of_migratory_block_keeps_nomination():
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    fsm.replacement(1)
    assert fsm.state is DetectorState.MIGRATORY_UNCACHED
    assert fsm.is_migratory
    fsm.read_miss(2)            # re-fetch: straight back to migratory-dirty
    assert fsm.state is DetectorState.MIGRATORY_DIRTY
    assert fsm.owner == 2


# ----------------------------------------------------------------------
# NoMig revert (Section 3.4 / 5.4)
# ----------------------------------------------------------------------
def test_read_only_pingpong_reverts():
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    assert fsm.is_migratory
    # Processor 2 reads; owner 1 wrote, so ownership migrates to 2.
    fsm.read_miss(2)
    assert fsm.owner == 2
    # Processor 3 reads while 2 never wrote: NoMig, revert to ordinary.
    fsm.read_miss(3)
    assert not fsm.is_migratory
    assert fsm.state is DetectorState.SHARED_REMOTE
    assert fsm.sharers == {2, 3}
    assert fsm.reverts == 1
    assert fsm.last_writer is None


def test_nomig_disabled_keeps_pingponging():
    fsm = adaptive_fsm(nomig_enabled=False)
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    fsm.read_miss(2)
    fsm.read_miss(3)            # would revert, but the ablation disables it
    assert fsm.is_migratory
    assert fsm.owner == 3
    assert fsm.reverts == 0


def test_block_can_be_renominated_after_revert():
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    fsm.read_miss(2)
    fsm.read_miss(3)            # NoMig revert
    assert not fsm.is_migratory
    # Now start writing again in migratory style.
    fsm.read_exclusive(3)       # sharers were {2,3}, but LW invalid -> no
    assert not fsm.is_migratory
    fsm.read_miss(4)
    fsm.read_exclusive(4)       # N==2 ({3,4}), LW=3 != 4 -> nominate again
    assert fsm.is_migratory
    assert fsm.nominations == 2


# ----------------------------------------------------------------------
# Rxq on a migratory block (Section 3.4, dashed arrows)
# ----------------------------------------------------------------------
def test_rxq_default_keeps_migratory():
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    fsm.read_exclusive(2)       # write without preceding read
    assert fsm.is_migratory
    assert fsm.owner == 2


def test_rxq_heuristic_demotes():
    fsm = adaptive_fsm(rxq_reverts_to_ordinary=True)
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    fsm.read_exclusive(2)
    assert not fsm.is_migratory
    assert fsm.state is DetectorState.DIRTY_REMOTE
    assert fsm.owner == 2


def test_rxq_heuristic_demotes_from_migratory_uncached():
    fsm = adaptive_fsm(rxq_reverts_to_ordinary=True)
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    fsm.replacement(1)
    assert fsm.state is DetectorState.MIGRATORY_UNCACHED
    fsm.read_exclusive(2)
    assert fsm.state is DetectorState.DIRTY_REMOTE


def test_write_without_read_stays_migratory_by_default():
    """Paper: 'As a default policy, we still consider the block migratory'."""
    fsm = adaptive_fsm()
    fsm.read_miss(0)
    fsm.read_exclusive(0)
    fsm.read_miss(1)
    fsm.read_exclusive(1)
    fsm.replacement(1)
    fsm.read_exclusive(2)       # first access is a write
    assert fsm.state is DetectorState.MIGRATORY_DIRTY
    assert fsm.owner == 2
