"""TransactionTracer unit behaviour: lifecycle, aggregates, percentiles."""

from repro.obs.tracer import TransactionTracer, _percentile, render_latency_summary


def _close_with_latency(tracer, latency, op="read", now=0):
    trace_id = tracer.open(node=0, block=0x40, home=1, op=op, now=now)
    tracer.close_span(trace_id, now + latency, "SHARED")
    return trace_id


def test_ids_are_unique_and_nonzero():
    tracer = TransactionTracer()
    ids = {tracer.open(0, 0x40 * i, 1, "read", 0) for i in range(10)}
    assert len(ids) == 10
    assert 0 not in ids  # 0 means "untraced" on messages


def test_close_moves_span_from_live_to_spans():
    tracer = TransactionTracer(policy_name="AD")
    trace_id = tracer.open(0, 0x40, 1, "write", 5)
    assert trace_id in tracer.live
    tracer.close_span(trace_id, 30, "DIRTY")
    assert trace_id not in tracer.live
    assert len(tracer.spans) == 1
    assert tracer.spans[0].latency == 25


def test_close_of_unknown_id_is_ignored():
    tracer = TransactionTracer()
    tracer.close_span(999, 10, None)
    assert tracer.spans == []


def test_max_spans_drops_detail_but_keeps_aggregates():
    tracer = TransactionTracer(max_spans=2)
    for i in range(5):
        _close_with_latency(tracer, 10 + i)
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3
    summary = tracer.summary()
    assert summary["by_op"]["read"]["count"] == 5  # aggregates saw them all
    assert summary["spans_dropped"] == 3


def test_summary_percentiles_and_segments():
    tracer = TransactionTracer(policy_name="W-I")
    for latency in (10, 20, 30, 40, 100):
        _close_with_latency(tracer, latency)
    _close_with_latency(tracer, 50, op="upgrade")
    doc = tracer.summary()
    read = doc["by_op"]["read"]
    assert read["count"] == 5
    assert read["p50"] == 30
    assert read["p99"] == 100
    assert read["mean"] == 40.0
    # close() attributes the whole latency to local_cache here (no marks).
    assert read["segment_means"] == {"local_cache": 40.0}
    assert doc["by_op"]["upgrade"]["count"] == 1
    assert doc["policy"] == "W-I"
    assert doc["spans_open"] == 0


def test_summary_with_no_spans_is_empty_but_valid():
    doc = TransactionTracer().summary()
    assert doc["by_op"] == {}
    assert doc["spans_closed"] == 0
    text = render_latency_summary(doc)
    assert "0 transactions" in text


def test_nearest_rank_percentile():
    ordered = [1, 2, 3, 4]
    assert _percentile(ordered, 0.50) == 2
    assert _percentile(ordered, 0.95) == 4
    assert _percentile([7], 0.99) == 7
    # Nearest rank never interpolates, always returns an element.
    assert _percentile(ordered, 0.01) == 1


def test_render_latency_summary_is_readable():
    tracer = TransactionTracer(policy_name="AD")
    for latency in (11, 13, 17):
        _close_with_latency(tracer, latency)
    text = render_latency_summary(tracer.summary())
    assert "read" in text
    assert "p95" in text
    assert "AD" in text
