"""End-to-end tracing acceptance: tiny MP3D under W-I and AD.

These are the ISSUE's acceptance checks: every span's per-segment cycles
tile its measured latency exactly, the AD trace shows fewer invalidations
for migratory blocks than W-I, and enabling tracing never changes the
simulation itself.
"""

import pytest

from repro.core.policy import ProtocolPolicy
from repro.machine.config import MachineConfig
from repro.machine.system import Machine
from repro.workloads import make_workload


def _traced_run(policy, trace=True):
    config = MachineConfig.dash_default(policy=policy, trace=trace)
    machine = Machine(config)
    workload = make_workload("mp3d", config.num_nodes, "tiny", seed=42)
    result = machine.run(workload.programs())
    return machine, result


@pytest.fixture(scope="module")
def wi_run():
    return _traced_run(ProtocolPolicy.write_invalidate())


@pytest.fixture(scope="module")
def ad_run():
    return _traced_run(ProtocolPolicy.adaptive_default())


def test_every_span_tiles_its_latency(wi_run, ad_run):
    for machine, _ in (wi_run, ad_run):
        tracer = machine.tracer
        assert tracer.spans, "expected traced transactions"
        for span in tracer.spans:
            assert sum(span.segments.values()) == span.latency, span
        assert not tracer.live, "all transactions should retire"


def test_every_miss_opened_a_span(wi_run):
    machine, result = wi_run
    # Counters reset at the StatsMark (steady-state measurement); the
    # tracer deliberately covers the whole run including warmup, so it
    # sees at least every measured miss.
    misses = (
        result.counter("read_misses")
        + result.counter("write_misses")
        + result.counter("write_upgrades")
        + result.counter("prefetches_issued")
    )
    assert len(machine.tracer.spans) >= misses
    summary = machine.tracer.summary()
    assert sum(s["count"] for s in summary["by_op"].values()) == len(
        machine.tracer.spans
    )


def test_ad_traces_fewer_invalidations_than_wi(wi_run, ad_run):
    wi_tracer, ad_tracer = wi_run[0].tracer, ad_run[0].tracer
    # Migratory blocks under AD move by ownership transfer (Mack) instead
    # of an invalidate round on every write — the invalidation segments in
    # the trace drop accordingly (paper Section 3).
    assert ad_tracer.total_invals < wi_tracer.total_invals
    ad_summary = ad_tracer.summary()
    assert ad_summary["served_by"].get("migratory", 0) > 0
    assert wi_tracer.summary()["served_by"].get("migratory", 0) == 0


def test_segment_vocabulary_and_served_by_are_populated(ad_run):
    tracer = ad_run[0].tracer
    seen_segments = set()
    for span in tracer.spans:
        seen_segments.update(span.segments)
        assert span.served_by in ("memory", "owner", "migratory")
    assert {"request_net", "reply_net", "local_cache"} <= seen_segments
    assert "directory" in seen_segments or "memory" in seen_segments


def test_summary_feeds_run_result(ad_run):
    _, result = ad_run
    assert result.latency is not None
    assert result.latency["spans_closed"] == len(ad_run[0].tracer.spans)
    assert "read" in result.latency["by_op"]


def test_state_transitions_are_recorded(ad_run):
    tracer = ad_run[0].tracer
    transitions = [t for span in tracer.spans for t in span.transitions]
    assert transitions
    sites = {t[1] for t in transitions}
    assert any(site.startswith("dir") for site in sites)
    assert any(site.startswith("cache") for site in sites)


def test_dragon_update_transactions_trace_and_tile():
    """Write-update commits (Wu -> Wup -> Uacks) trace like any other
    transaction: segments tile, data is "served by" the update commit,
    and the Upd fan-out is counted per span."""
    machine, _ = _traced_run(ProtocolPolicy.dragon())
    tracer = machine.tracer
    for span in tracer.spans:
        assert sum(span.segments.values()) == span.latency, span
    assert not tracer.live
    summary = tracer.summary()
    assert summary["served_by"].get("update", 0) > 0
    assert summary["updates"] > 0
    updated = [s for s in tracer.spans if s.served_by == "update"]
    assert updated
    # A committed write crosses both meshes and touches home memory.
    sample = max(updated, key=lambda s: s.n_updates)
    assert sample.n_updates >= 1
    assert {"request_net", "memory", "reply_net", "local_cache"} <= set(
        sample.segments
    )


def test_tracing_disabled_is_result_identical(ad_run):
    machine, traced = ad_run
    plain_machine, plain = _traced_run(
        ProtocolPolicy.adaptive_default(), trace=False
    )
    assert plain_machine.tracer is None
    assert plain.execution_time == traced.execution_time
    assert plain.network_bits == traced.network_bits
    assert plain.events_processed == traced.events_processed
    assert plain.counters.as_dict() == traced.counters.as_dict()
    assert plain.latency is None
