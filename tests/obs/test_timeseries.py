"""MetricsRing bounds/export and MetricsSampler behaviour on a machine."""

import json

import pytest

from repro.core.policy import ProtocolPolicy
from repro.machine.config import MachineConfig
from repro.machine.system import Machine
from repro.obs.timeseries import COLUMNS, MetricsRing
from repro.workloads import make_workload


def test_ring_bounds_and_drop_accounting():
    ring = MetricsRing(columns=("a", "b"), capacity=3)
    for i in range(5):
        ring.append((i, i * 10))
    assert len(ring) == 3
    assert ring.total_samples == 5
    assert ring.dropped == 2
    assert ring.rows == [(2, 20), (3, 30), (4, 40)]  # oldest evicted first


def test_ring_rejects_bad_rows_and_capacity():
    ring = MetricsRing(columns=("a", "b"), capacity=2)
    with pytest.raises(ValueError):
        ring.append((1,))
    with pytest.raises(ValueError):
        MetricsRing(capacity=0)


def test_ring_csv_export():
    ring = MetricsRing(columns=("time", "util"), capacity=4)
    ring.append((100, 0.25))
    ring.append((200, 0.5))
    lines = ring.to_csv().strip().split("\n")
    assert lines[0] == "time,util"
    assert lines[1] == "100,0.25"
    assert len(lines) == 3


def test_ring_json_export(tmp_path):
    ring = MetricsRing(columns=("time", "depth"), capacity=2)
    for i in range(3):
        ring.append((i, i))
    target = tmp_path / "metrics.json"
    ring.write_json(str(target))
    doc = json.loads(target.read_text())
    assert doc["schema"] == "repro-metrics/1"
    assert doc["columns"] == ["time", "depth"]
    assert doc["dropped"] == 1
    assert doc["rows"] == [[1, 1], [2, 2]]


def _run(policy, **cfg_overrides):
    config = MachineConfig.dash_default(policy=policy, **cfg_overrides)
    machine = Machine(config)
    workload = make_workload("migratory-counters", config.num_nodes, "tiny", seed=42)
    result = machine.run(workload.programs())
    return machine, result


def test_sampler_samples_and_terminates():
    machine, result = _run(
        ProtocolPolicy.adaptive_default(), metrics_interval=100
    )
    ring = machine.metrics.ring
    assert len(ring) > 0
    assert ring.columns == COLUMNS
    times = [row[0] for row in ring.rows]
    assert times == sorted(times)
    # The sampler must not keep the run alive past quiescence: the last
    # sample falls within one interval of the machine finishing.
    assert times[-1] <= result.execution_time + 2 * 100
    # Depth and occupancy columns are sane.
    for row in ring.rows:
        record = dict(zip(ring.columns, row))
        assert record["mshrs"] >= 0
        assert record["dir_pending"] >= 0
        assert 0.0 <= record["bus_util"]
        assert 0.0 <= record["mem_util"]


def test_sampler_does_not_change_results():
    _, plain = _run(ProtocolPolicy.adaptive_default())
    _, sampled = _run(ProtocolPolicy.adaptive_default(), metrics_interval=50)
    assert plain.execution_time == sampled.execution_time
    assert plain.network_bits == sampled.network_bits
    assert plain.counters.as_dict() == sampled.counters.as_dict()


def test_sampler_capacity_bounds_retention():
    machine, _ = _run(
        ProtocolPolicy.write_invalidate(), metrics_interval=10,
        metrics_capacity=5,
    )
    ring = machine.metrics.ring
    assert len(ring) <= 5
    assert ring.total_samples > 5
    assert ring.dropped == ring.total_samples - len(ring)
