"""Span mechanics: the mark cursor and the tiling invariant."""

import pytest

from repro.obs.span import SEGMENTS, Span


def _span(start=100):
    return Span(trace_id=1, node=3, block=0x40, home=2, op="read", start=start)


def test_marks_tile_the_latency():
    span = _span(start=100)
    span.mark("request_net", 120)
    span.mark("directory", 126)
    span.mark("memory", 136)
    span.mark("reply_net", 170)
    span.close(173, "SHARED")
    assert span.latency == 73
    assert sum(span.segments.values()) == span.latency
    assert span.segments["local_cache"] == 3
    assert span.fill_state == "SHARED"
    assert span.closed


def test_zero_length_mark_records_segment_but_no_interval():
    span = _span(start=10)
    span.mark("request_net", 10)
    assert span.segments["request_net"] == 0
    assert span.intervals == []
    span.close(10, None)
    assert span.latency == 0
    assert sum(span.segments.values()) == 0


def test_marks_accumulate_across_retry_rounds():
    span = _span(start=0)
    span.mark("request_net", 10)
    span.mark("directory", 14)
    span.mark("owner_forward", 40)  # first round NAKed
    span.mark("directory", 46)  # retry restarts directory service
    span.mark("owner_forward", 70)
    span.mark("reply_net", 90)
    span.close(90, "DIRTY")
    assert span.segments["directory"] == 4 + 6
    assert span.segments["owner_forward"] == 26 + 24
    assert sum(span.segments.values()) == span.latency == 90


def test_non_monotone_mark_raises():
    span = _span(start=50)
    span.mark("request_net", 60)
    with pytest.raises(ValueError):
        span.mark("directory", 55)


def test_latency_of_open_span_raises():
    with pytest.raises(ValueError):
        _span().latency


def test_intervals_cover_in_causal_order():
    span = _span(start=0)
    span.mark("request_net", 5)
    span.mark("directory", 9)
    span.close(20, "SHARED")
    assert span.intervals == [
        ("request_net", 0, 5),
        ("directory", 5, 9),
        ("local_cache", 9, 20),
    ]
    # Intervals chain: each begins where the previous ended.
    for (_, _, end), (_, begin, _) in zip(span.intervals, span.intervals[1:]):
        assert end == begin


def test_to_json_round_trips_core_fields():
    span = _span(start=7)
    span.note_transition(9, "dir2", "UNCACHED", "SHARED_REMOTE")
    span.mark("request_net", 12)
    span.close(15, "SHARED")
    doc = span.to_json()
    assert doc["trace_id"] == 1
    assert doc["latency"] == 8
    assert doc["segments"] == {"request_net": 5, "local_cache": 3}
    assert doc["transitions"] == [[9, "dir2", "UNCACHED", "SHARED_REMOTE"]]
    assert set(doc["segments"]) <= set(SEGMENTS)
