"""Chrome-trace export structure and the trace_events validator."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    spans_to_json,
    validate_trace_events,
    write_chrome_trace,
)
from repro.obs.timeseries import MetricsRing
from repro.obs.tracer import TransactionTracer


def _tracer_with_spans():
    tracer = TransactionTracer(policy_name="AD")
    # Two overlapping transactions on node 0 and one on node 1.
    a = tracer.open(0, 0x40, 1, "read", 0)
    b = tracer.open(0, 0x80, 2, "write", 5)
    c = tracer.open(1, 0xC0, 0, "upgrade", 2)
    for trace_id, end in ((a, 30), (b, 42), (c, 18)):
        span = tracer.live[trace_id]
        span.mark("request_net", span.start + 8)
        span.note_transition(span.start + 9, "dir", "UNCACHED", "SHARED_REMOTE")
        tracer.close_span(trace_id, end, "SHARED")
    return tracer


def test_chrome_trace_validates_and_names_processes():
    doc = chrome_trace(_tracer_with_spans())
    count = validate_trace_events(doc)
    assert count == len(doc["traceEvents"])
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {"node 0", "node 1"}


def test_overlapping_spans_get_distinct_lanes():
    doc = chrome_trace(_tracer_with_spans())
    slices = [
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "transaction" and e["pid"] == 0
    ]
    assert len(slices) == 2
    assert slices[0]["tid"] != slices[1]["tid"]  # concurrent => separate lanes


def test_segment_slices_nest_inside_their_transaction():
    doc = chrome_trace(_tracer_with_spans())
    transactions = {
        (e["pid"], e["tid"]): (e["ts"], e["ts"] + e["dur"])
        for e in doc["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "transaction"
    }
    segments = [
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "segment"
    ]
    assert segments
    for seg in segments:
        begin, end = transactions[(seg["pid"], seg["tid"])]
        assert begin <= seg["ts"] and seg["ts"] + seg["dur"] <= end + 1e-9


def test_metrics_become_counter_events():
    ring = MetricsRing(capacity=8)
    ring.append((100, 4, 2, 1, 3, 0.5, 0.25, 0.1, 0.2, 7, 7, 1))
    doc = chrome_trace(_tracer_with_spans(), metrics=ring)
    validate_trace_events(doc)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert {e["name"] for e in counters} >= {"mshrs", "bus_util", "updates_sent"}


def test_write_chrome_trace_is_loadable_json(tmp_path):
    target = tmp_path / "trace.json"
    write_chrome_trace(_tracer_with_spans(), str(target))
    doc = json.loads(target.read_text())
    assert validate_trace_events(doc) > 0
    assert doc["otherData"]["schema"] == "repro-chrome-trace/1"


def test_spans_to_json_carries_summary_and_spans():
    doc = spans_to_json(_tracer_with_spans())
    assert doc["schema"] == "repro-trace/1"
    assert len(doc["spans"]) == 3
    assert doc["summary"]["spans_closed"] == 3
    limited = spans_to_json(_tracer_with_spans(), limit=1)
    assert len(limited["spans"]) == 1


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.pop("traceEvents"), "traceEvents"),
        (lambda d: d["traceEvents"].append({"ph": "Z", "name": "x"}), "phase"),
        (lambda d: d["traceEvents"].append({"ph": "X"}), "name"),
        (
            lambda d: d["traceEvents"].append(
                {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1, "dur": -2}
            ),
            "dur",
        ),
        (
            lambda d: d["traceEvents"].append(
                {"ph": "X", "name": "x", "pid": "zero", "tid": 0, "ts": 1, "dur": 1}
            ),
            "pid",
        ),
        (
            lambda d: d["traceEvents"].append(
                {"ph": "C", "name": "x", "pid": 0, "tid": 0, "ts": 1, "args": {}}
            ),
            "counter",
        ),
    ],
)
def test_validator_rejects_malformed_documents(mutate, message):
    doc = chrome_trace(_tracer_with_spans())
    mutate(doc)
    with pytest.raises(ValueError, match=message):
        validate_trace_events(doc)
