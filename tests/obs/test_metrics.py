"""The stdlib metrics layer: instruments, registry, exposition round-trip.

The exposition check deliberately goes *through* :func:`parse_exposition`
so the renderer and the parser validate each other — a malformed line on
either side fails the round-trip.
"""

import math
import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    MAX_LABEL_SETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    sample_count,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_decrease(registry):
    c = registry.counter("jobs_total", "Jobs.")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_labeled_counter_children_are_cached(registry):
    c = registry.counter("http_total", "Requests.", labelnames=("method", "route"))
    c.labels("GET", "/stats").inc()
    c.labels(method="GET", route="/stats").inc()
    c.labels("POST", "/jobs").inc(3)
    assert c.labels("GET", "/stats") is c.labels("GET", "/stats")
    assert c.labels("GET", "/stats").value == 2
    assert c.labels("POST", "/jobs").value == 3
    # The parent of a labeled metric cannot be incremented directly.
    with pytest.raises(ValueError):
        c.inc()
    # Wrong arity / unknown names are errors, not silent children.
    with pytest.raises(ValueError):
        c.labels("GET")
    with pytest.raises(ValueError):
        c.labels(method="GET", path="/stats")


def test_gauge_set_inc_dec_and_callback(registry):
    g = registry.gauge("depth", "Queue depth.")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3
    backing = {"n": 7}
    g.set_function(lambda: backing["n"])
    assert g.value == 7
    backing["n"] = 9
    assert g.value == 9
    # A raising callback degrades to NaN rather than breaking the scrape.
    g.set_function(lambda: 1 / 0)
    assert math.isnan(g.value)


def test_histogram_buckets_are_cumulative(registry):
    h = registry.histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 5.0, 100.0):
        h.observe(v)
    assert h.count == 3
    assert h.sum == pytest.approx(105.05)
    assert h.bucket_counts() == {0.1: 1, 1.0: 1, 10.0: 2, math.inf: 3}


def test_histogram_timer_observes_elapsed(registry):
    h = registry.histogram("t", "Timer.", buckets=(60.0,))
    with h.time():
        pass
    assert h.count == 1
    assert 0 <= h.sum < 60


# ----------------------------------------------------------------------
# Label-cardinality cap
# ----------------------------------------------------------------------
def test_label_cardinality_overflow_collapses_to_one_child(registry):
    c = registry.counter("wild", "Unbounded labels.", labelnames=("key",))
    for i in range(MAX_LABEL_SETS):
        c.labels(str(i)).inc()
    assert c.dropped_label_sets == 0
    # Past the cap every new combination lands on the shared overflow child.
    first_over = c.labels("too-many-1")
    second_over = c.labels("too-many-2")
    assert first_over is second_over
    first_over.inc()
    second_over.inc()
    assert c.dropped_label_sets == 2
    families = parse_exposition(registry.exposition())
    assert families["wild"].value({"key": obs_metrics.OVERFLOW_LABEL_VALUE}) == 2


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_get_or_create_is_idempotent(registry):
    a = registry.counter("n", "first declaration")
    b = registry.counter("n", "second declaration ignored")
    assert a is b
    with pytest.raises(ValueError):
        registry.gauge("n")  # same name, different type
    with pytest.raises(ValueError):
        registry.counter("n", labelnames=("x",))  # different labels


def test_invalid_names_rejected(registry):
    with pytest.raises(ValueError):
        registry.counter("1bad")
    with pytest.raises(ValueError):
        registry.counter("ok", labelnames=("le-gal?",))
    with pytest.raises(ValueError):
        registry.histogram("h", labelnames=("le",))


def test_disable_makes_mutations_noops(registry):
    c = registry.counter("quiet", "")
    obs_metrics.set_enabled(False)
    try:
        c.inc()
        registry.gauge("g").set(5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        assert c.value == 0
        assert registry.get("g").value == 0
        assert registry.get("h").count == 0
    finally:
        obs_metrics.set_enabled(True)
    c.inc()
    assert c.value == 1


def test_concurrent_label_creation_is_safe(registry):
    c = registry.counter("race", "", labelnames=("who",))

    def spin(tag):
        for _ in range(200):
            c.labels(tag).inc()

    threads = [threading.Thread(target=spin, args=(str(i % 4),)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sum(c.labels(str(i)).value for i in range(4)) == 8 * 200


# ----------------------------------------------------------------------
# Exposition round-trip
# ----------------------------------------------------------------------
def test_exposition_round_trip(registry):
    registry.counter("req_total", "Requests served.", labelnames=("route",))
    registry.get("req_total").labels("/jobs").inc(4)
    registry.get("req_total").labels('/with"quote\\and\nnewline').inc()
    registry.gauge("temp", "Current value.").set(2.5)
    h = registry.histogram("secs", "Durations.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(50)

    text = registry.exposition()
    families = parse_exposition(text)

    assert families["req_total"].type == "counter"
    assert families["req_total"].help == "Requests served."
    assert families["req_total"].value({"route": "/jobs"}) == 4
    assert families["req_total"].value({"route": '/with"quote\\and\nnewline'}) == 1

    assert families["temp"].type == "gauge"
    assert families["temp"].value() == 2.5

    secs = families["secs"]
    assert secs.type == "histogram"
    assert secs.value({"le": "0.1"}, sample_name="secs_bucket") == 1
    assert secs.value({"le": "1"}, sample_name="secs_bucket") == 2
    assert secs.value({"le": "+Inf"}, sample_name="secs_bucket") == 3
    assert secs.value(sample_name="secs_sum") == pytest.approx(50.55)
    assert secs.value(sample_name="secs_count") == 3

    # 2 counter series + 1 gauge + (3 buckets + sum + count) = 8.
    assert sample_count(families) == 8


def test_parse_exposition_rejects_garbage():
    with pytest.raises(ValueError):
        parse_exposition("this is not exposition\n")
    with pytest.raises(ValueError):
        parse_exposition('x{bad labels} 1\n')
    with pytest.raises(ValueError):
        parse_exposition("# TYPE x sideways\n")


def test_module_level_helpers_use_global_registry():
    name = "repro_test_global_counter_total"
    try:
        obs_metrics.counter(name, "Test series.").inc()
        families = parse_exposition(obs_metrics.exposition())
        assert families[name].value() >= 1
    finally:
        obs_metrics.REGISTRY._metrics.pop(name, None)


def test_value_formatting_handles_special_floats(registry):
    registry.gauge("inf_g").set(math.inf)
    registry.gauge("ninf_g").set(-math.inf)
    families = parse_exposition(registry.exposition())
    assert families["inf_g"].value() == math.inf
    assert families["ninf_g"].value() == -math.inf
