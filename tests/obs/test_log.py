"""Structured JSON logs and correlation-id threading."""

import io
import json

import pytest

from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def reset_logging():
    yield
    obs_log.configure(enabled=False, stream=None)


def capture():
    stream = io.StringIO()
    obs_log.configure(enabled=True, stream=stream)
    return stream


def events(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_log_event_emits_one_json_line_per_call():
    stream = capture()
    obs_log.log_event("serve", "cell_done", cell="ab12", attempts=2)
    obs_log.log_event("store", "hit", level="debug", key="cd34")
    first, second = events(stream)
    assert first["component"] == "serve"
    assert first["event"] == "cell_done"
    assert first["level"] == "info"
    assert first["cell"] == "ab12"
    assert first["attempts"] == 2
    assert isinstance(first["ts"], float)
    assert second["level"] == "debug"
    # None-valued fields are dropped, not serialized as null.
    stream2 = capture()
    obs_log.log_event("x", "y", omitted=None, kept=0)
    [doc] = events(stream2)
    assert "omitted" not in doc and doc["kept"] == 0


def test_disabled_logging_writes_nothing():
    stream = io.StringIO()
    obs_log.configure(enabled=False, stream=stream)
    obs_log.log_event("serve", "cell_done")
    assert stream.getvalue() == ""
    assert not obs_log.log_enabled()


def test_correlation_scope_stamps_and_restores():
    stream = capture()
    assert obs_log.correlation_id() == ""
    cid = obs_log.new_correlation_id("job")
    assert cid.startswith("job-") and len(cid) == len("job-") + 12
    with obs_log.correlation_scope(cid):
        assert obs_log.correlation_id() == cid
        obs_log.log_event("serve", "inside")
        with obs_log.correlation_scope("nested-1"):
            obs_log.log_event("serve", "deeper")
        assert obs_log.correlation_id() == cid
    assert obs_log.correlation_id() == ""
    obs_log.log_event("serve", "outside")
    inside, deeper, outside = events(stream)
    assert inside["cid"] == cid
    assert deeper["cid"] == "nested-1"
    assert "cid" not in outside


def test_configure_from_env_variants(tmp_path):
    assert obs_log.configure_from_env("") is False
    assert not obs_log.log_enabled()
    assert obs_log.configure_from_env("0") is False
    assert obs_log.configure_from_env("stderr") is True
    assert obs_log.log_enabled()
    target = tmp_path / "events.jsonl"
    assert obs_log.configure_from_env(str(target)) is True
    obs_log.log_event("cli", "configured", sink="file")
    lines = target.read_text().splitlines()
    assert json.loads(lines[0])["sink"] == "file"


def test_log_event_survives_broken_stream():
    class Broken(io.StringIO):
        def write(self, *_):
            raise OSError("disk full")

    obs_log.configure(enabled=True, stream=Broken())
    obs_log.log_event("serve", "still_fine")  # must not raise
